// Package dynamic extends the static low-contention dictionary to support
// insertions and deletions — the direction the paper's §4 names as future
// work ("study the contention caused by the updates in dynamic data
// structures").
//
// The design is global rebuilding over the Theorem 3 structure:
//
//   - a static core.Dict holds a snapshot S₀;
//   - a small open-addressing buffer (its own cell-probe table, with
//     replicated hash parameters) absorbs updates: inserted keys, and
//     tombstones for deleted snapshot keys;
//   - queries check the buffer (expected O(1) probes at the buffer's tiny
//     load factor), then fall through to the static structure;
//   - when the buffer holds ε·n entries the whole dictionary is rebuilt
//     from the current key set, giving amortized O(1/ε) work per update
//     on top of the static O(n) construction.
//
// # Concurrency model
//
// The pair (static snapshot, update buffer) forms an immutable *epoch*
// published through an atomic pointer — the RCU discipline of lock-free
// open-addressing tables (Gao–Groote–Hesselink). Readers load the current
// epoch and probe it without taking any lock: the static table is immutable
// and the buffer's slot words are single atomic loads.
//
// Writers are lock-free on the fast path. Each buffer slot is one packed
// (tag, key) word driven through a monotone state machine by CAS — the
// claim-slot protocol of lock-free linear probing (Attiya–Oshman–Schiller):
//
//	empty ──CAS──▶ inserted(x) ──CAS──▶ vacated(x)
//	empty ──CAS──▶ deleted(x)  ──CAS──▶ vacated(x)
//
// A slot word changes at most twice per epoch and never returns to a prior
// state, so there is no ABA problem: a writer that loses a CAS re-reads the
// slot, and the new word tells it exactly what happened (its own key won the
// race, or another key claimed the slot and the probe chain continues).
// Tombstones (deleted) mark snapshot keys as removed; vacated slots keep
// probe chains intact and are never reused within an epoch. Occupancy is an
// atomic counter that writers pre-reserve before claiming an empty slot, so
// the buffer's load factor stays ≤ 1/2 without any lock.
//
// The writer mutex survives only to serialize epoch transitions: rebuild
// publication and delta-log replay. The hand-off is fenced by epoch-scoped
// writer accounting — a per-buffer writer count plus a sealed flag. A writer
// enters the buffer by incrementing the count and then checking sealed; the
// rebuilder seals the buffer and waits for the count to drain before
// scanning the slots for the snapshot. The seq-cst order of the two races
// (count-then-sealed vs sealed-then-count) guarantees every claimed slot is
// either observed by the snapshot scan or the claiming writer retreats to
// the mutex path, so no claimed slot is ever lost across a rebuild swap.
// Writers arriving while the buffer is sealed take the mutex: they apply to
// the still-published old buffer (readers must see their updates) and log
// the operation in a delta that is replayed into the fresh buffer before the
// new epoch is published. Writers that lose the epoch race simply retry
// against the freshly published epoch.
//
// A membership query performs zero shared mutable-memory writes outside the
// probed cells; an update writes one slot word plus striped statistics
// counters, so concurrent writers on different keys touch disjoint cache
// lines — update throughput scales with writer goroutines instead of
// flat-lining on a mutex.
//
// # Two-phase write absorption
//
// A skewed write storm defeats the claim path anyway: every writer of the
// same hot key converges on the same slot words and the CAS loop degenerates
// into a retry convoy while churned slots burn buffer capacity. With a
// non-nil Params.Hot the dictionary runs a two-phase protocol (Doppel-style
// phase reconciliation; see absorb.go): epochs whose classifier promoted
// keys run a *split* phase, in which writes to those keys bypass the buffer
// entirely — a wait-free Swap on the key's padded committed-state word plus
// a per-core delta-log append — and epochs without hot keys run today's
// *joined* phase unchanged. Contains consults the epoch's hot-key index
// before the buffer walk, so absorbed writes are visible to readers
// mid-phase. Phase boundaries coincide with rebuilds: the seal fence also
// quiesces the absorber, the snapshot scan folds each hot key's final state
// (last write wins, in phase-seal order) into the next key set, and the
// classifier reclassifies before the next epoch publishes. With Params.Hot
// nil (the default) none of this machinery exists and the update sequence
// is bit-identical to the pure claim-slot implementation.
//
// Read contention stays within a constant of the static dictionary's: the
// buffer's parameter row is replicated and its slot probes are spread by
// hashing. Update contention is the interesting quantity the paper asks
// about — every writer must touch the buffer's occupancy region, and the
// package counts read and write probes separately (Stats.ReadProbes,
// Stats.WriteProbes) so experiment X1 can quantify exactly that. With
// Params.SyncRebuild and a single writer the whole update sequence is
// deterministic: no CAS is ever contended and the probe accounting is
// bit-identical to the historical mutex implementation.
package dynamic

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/rng"
	"repro/internal/scheme"
	"repro/internal/telemetry/events"
)

// Slot tags in the buffer (the top bits of a packed slot word).
const (
	slotEmpty    = uint64(0)
	slotInserted = uint64(1)
	slotDeleted  = uint64(2) // tombstone for a snapshot key
	slotVacated  = uint64(3) // removed buffer entry; keeps probe chains intact
)

// A buffer slot packs (tag, key) into one word so that readers and writers
// exchange it with single atomic operations: keys are < 2^61, the tag takes
// the bits above.
const (
	tagShift = 61
	keyMask  = uint64(1)<<tagShift - 1
)

// packSlot encodes (tag, key) into one slot word. It reports ok=false when
// the key does not fit below the tag bits or the tag is not one of the four
// slot states — the write paths validate keys against hash.MaxKey (< 2^61)
// first, so a failure here means a caller bug, not bad user input.
func packSlot(tag, key uint64) (word uint64, ok bool) {
	if tag > slotVacated || key > keyMask {
		return 0, false
	}
	return tag<<tagShift | key, true
}

// unpackSlot decodes a slot word back into (tag, key).
func unpackSlot(word uint64) (tag, key uint64) {
	return word >> tagShift, word & keyMask
}

const (
	bufParamRow = 0
	bufSlotRow  = 1
	bufRows     = 2
)

// Params configures the dynamic dictionary.
type Params struct {
	// Epsilon is the buffer fraction: a rebuild triggers after
	// ⌈Epsilon·max(n,1)⌉ buffered updates. Must be in (0, 1]. Default 0.25.
	Epsilon float64
	// Static configures the underlying static construction.
	Static core.Params
	// SyncRebuild runs global rebuilds inline on the triggering update
	// instead of in a background goroutine. Readers are never blocked
	// either way; synchronous mode makes the epoch sequence deterministic
	// for reproducible experiments (X1) at the cost of O(n) update-call
	// latency at each rebuild.
	SyncRebuild bool
	// Sink, when non-nil, observes every recorded probe of the published
	// epochs' tables (live telemetry): it is installed on each new epoch's
	// static and buffer tables before the epoch is published, so readers
	// never race the installation. Buffer probes are reported with their
	// step offset by the static MaxProbes, keeping the two step ranges
	// distinguishable in step-mass reports. The sink sees the write path's
	// buffer probes too (the table cannot tell them apart); Stats separates
	// read and write probe counts exactly.
	Sink cellprobe.ProbeSink
	// Metrics, when non-nil, receives the rebuild-side telemetry: epoch
	// publishes, rebuild durations, writer pauses at the buffer hard cap,
	// the buffered-delta depth, and the per-claim probe/CAS-retry counts of
	// the lock-free write path.
	Metrics Metrics
	// Hot, when non-nil, enables two-phase write absorption: the classifier
	// observes every claim walk, signals promotion pressure, and is asked to
	// reclassify the hot set at each phase boundary (rebuild). Nil — the
	// default — keeps the pure claim-slot protocol, bit-identical to
	// absorption-free builds.
	Hot HotClassifier
	// Events, when non-nil, receives the structured flight-recorder events
	// of the epoch life cycle: EpochSealed at the rebuild fence,
	// RebuildStart/RebuildEnd around each construction, and PhaseSplit/
	// PhaseJoined at write-absorption phase transitions. Emission is
	// lock-free and never blocks the rebuild path.
	Events *events.Log
	// EventShard labels emitted events with this shard index (the sharded
	// composite sets it per shard; 0 for unsharded dictionaries).
	EventShard int
	// ShardEvents marks this dictionary as one shard of a multi-shard
	// composite: each published rebuild additionally emits a ShardRebuild
	// event, so composite-level consumers can watch shard churn without
	// decoding per-shard streams.
	ShardEvents bool
}

// Metrics receives a dynamic dictionary's rebuild-side telemetry.
// *telemetry.DynamicMetrics implements it; the indirection keeps this
// package below internal/telemetry in the import graph. WriteClaim is called
// from the lock-free write path by any number of concurrent writers;
// implementations must not take locks.
type Metrics interface {
	RebuildDone(n int, durationNs int64)
	RebuildFailed(durationNs int64)
	WriterPaused(pauseNs int64)
	SetDeltaDepth(depth int)
	// WriteClaim records one completed claim walk: the probes it issued and
	// the CAS races it lost along the way.
	WriteClaim(probes, casRetries uint64)
	// WriteAbsorbed records one write soaked by the split-phase overlay
	// instead of the claim path. Called lock-free, like WriteClaim.
	WriteAbsorbed()
	// PhaseSealed records one phase boundary: the sealed phase's hot-set
	// size and the operations its absorber soaked.
	PhaseSealed(hotKeys int, absorbedOps uint64)
	// SetPhase publishes the freshly published epoch's hot-set size
	// (0 = joined phase).
	SetPhase(hotKeys int)
}

// emit records one flight-recorder event when a log is attached. Emission
// is lock-free (one CAS claim on the bounded ring) and never blocks a
// rebuild or a writer: a full ring drops the event onto an exact counter
// that the log surfaces as an OverflowDropped timeline entry.
func (d *Dict) emit(typ events.Type, a, b, c uint64) {
	if d.p.Events != nil {
		d.p.Events.Emit(typ, d.p.EventShard, a, b, c)
	}
}

// stepSink offsets every observed probe's step — the buffer table's sink,
// so buffer steps land past the static dictionary's step range.
type stepSink struct {
	sink cellprobe.ProbeSink
	off  int
}

func (s stepSink) ProbeObserved(step, cell int) { s.sink.ProbeObserved(step+s.off, cell) }

// Stats describes the dictionary's dynamic behaviour. All counter fields are
// maintained on atomic or striped counters, so Stats is safe to call while
// writers and rebuilds are in full flight; totals read during a storm may
// trail in-progress operations by a few counts (quiesce for exact figures).
type Stats struct {
	Len             int    // current number of keys
	Epoch           int    // rebuilds performed
	SnapshotN       int    // keys in the current static snapshot
	Buffered        int    // live buffer entries (inserts + tombstones)
	BufferSlots     int    // buffer slot capacity
	RebuildKeys     int    // total keys across all rebuilds (amortization numerator)
	Updates         int    // total Insert/Delete calls that changed state
	ReadProbes      uint64 // probes issued by Contains (static probes counted at MaxProbes)
	WriteProbes     uint64 // probes and writes issued by Insert/Delete (replays included)
	WriteCASRetries uint64 // claim CASes lost to a racing writer (0 single-writer)
	RebuildCells    int    // cells written by the last rebuild
	StaticHashTries int    // hash draws of the last rebuild
	AbsorbedWrites  uint64 // writes soaked by split-phase overlays (all phases)
	PhaseSeals      int    // phase boundaries sealed with absorption enabled
	HotKeys         int    // absorbed-hot keys in the current epoch
	SplitPhase      bool   // whether the current epoch runs a split phase
}

// buffer is the update buffer of one epoch: an open-addressing table whose
// slot words are atomic, so lock-free readers and writers run concurrently.
// The acct table carries the cell-probe model's accounting (probe recording,
// replicated parameter row); slot data lives in the packed atomic words.
type buffer struct {
	acct      *cellprobe.Table
	slots     []atomic.Uint64
	width     int
	threshold int // occupancy that triggers a rebuild
	hardCap   int // occupancy at which writers wait for the rebuild (load ≤ 1/2)

	occupied atomic.Int64 // slots claimed (including vacated) — drives rebuild
	buffered atomic.Int64 // live entries: occupied minus vacated

	// Epoch-scoped writer accounting: the rebuild fence. writers counts
	// lock-free claims in flight; sealed, once set (it is never cleared),
	// diverts new writers to the mutex path. The rebuilder seals, then waits
	// for writers to drain before scanning the slots for its snapshot.
	writers atomic.Int64
	sealed  atomic.Bool
}

// params probes a random replica of the buffer's parameter row.
func (b *buffer) params(r rng.Source) hash.Pairwise {
	c := b.acct.Probe(0, bufParamRow, r.Intn(b.width))
	return hash.Pairwise{A: c.Lo, B: c.Hi, M: uint64(b.width)}
}

// seal closes the buffer to lock-free writers and waits for those already
// inside to finish, so that a subsequent slot scan observes every committed
// claim. Callers hold the dictionary mutex; sealed is never cleared again —
// the buffer's epoch is replaced instead.
func (b *buffer) seal() {
	b.sealed.Store(true)
	for b.writers.Load() != 0 {
		runtime.Gosched()
	}
}

// find walks the probe chain for x. It returns the slot holding x
// (found=true) or the first empty slot (found=false). Probes are recorded
// at steps 1, 2, ... on the accounting table; callers already probed the
// parameter row at step 0.
func (b *buffer) find(x uint64, h hash.Pairwise) (slot int, tag uint64, found bool, probes uint64, err error) {
	p := int(h.Eval(x))
	for step := 1; step <= b.width+1; step++ {
		b.acct.Probe(step, bufSlotRow, p)
		w := b.slots[p].Load()
		probes++
		t, k := unpackSlot(w)
		switch {
		case t == slotEmpty:
			return p, slotEmpty, false, probes, nil
		case k == x && t != slotVacated:
			return p, t, true, probes, nil
		}
		p = (p + 1) % b.width
	}
	return 0, 0, false, probes, fmt.Errorf("dynamic: buffer scan wrapped (corrupt table?)")
}

// epoch is one immutable published state: a static snapshot plus the buffer
// absorbing the updates since. Readers obtain both with one pointer load.
// baseKeys/baseSet describe the snapshot's key set; both are frozen before
// the epoch is published, so writers consult baseSet without coordination.
type epoch struct {
	base     *core.Dict
	buf      *buffer
	baseKeys []uint64        // the snapshot's keys, in build order
	baseSet  map[uint64]bool // the same keys, for O(1) membership checks
	// hot is the epoch's split-phase absorber, or nil in a joined phase.
	// Like the rest of the epoch it is frozen (index and key set) before
	// publication; only its entries' committed-state words and per-core
	// logs mutate during the phase, under the same writer fence as the
	// buffer slots.
	hot *absorber
}

// update is one buffered operation, logged for replay when a background
// rebuild swaps epochs. Only mutex-path writers (those fenced out of a
// sealed buffer) append to the delta, so the log order is the linearization
// order of the operations it holds.
type update struct {
	key uint64
	del bool
}

// claimOutcome classifies one claim walk.
type claimOutcome int

const (
	claimNoChange claimOutcome = iota // membership already as requested
	claimChanged                      // slot published, membership changed
	claimFull                         // occupancy cap reached; caller must wait
)

// Dict is a dynamic low-contention dictionary. Contains and Len are safe
// for any number of concurrent callers and take no lock. Insert and Delete
// are safe for any number of concurrent callers too: the fast path claims
// buffer slots with CAS and takes no lock; the internal mutex is acquired
// only to coordinate epoch transitions (rebuild trigger, sealed-buffer
// delta logging, hard-cap waits). Probe recording (BaseTable/BufferTable
// with an attached Recorder) is a sequential measurement mode: quiesce and
// stop updating while a recorder is attached.
type Dict struct {
	p    Params
	seed uint64

	cur atomic.Pointer[epoch]
	n   atomic.Int64 // current key count, mirrored for lock-free Len

	readProbes  *cellprobe.StripedCounter
	writeProbes *cellprobe.StripedCounter
	casRetries  *cellprobe.StripedCounter
	absorbed    *cellprobe.StripedCounter // writes soaked by split-phase overlays
	updates     atomic.Int64              // state-changing Insert/Delete calls
	scratch     sync.Pool                 // *core.QueryScratch reused across Contains calls
	batch       sync.Pool                 // *batchState reused across ContainsBatch calls

	mu         sync.Mutex
	cond       *sync.Cond
	epoch      int // epochs started (== Stats.Epoch when idle)
	rebuilding bool
	rebuildErr error
	delta      []update // updates applied to a sealed buffer since its snapshot scan
	stats      Stats    // rebuild-owned fields; counters live on the atomics above
}

// New builds a dynamic dictionary over the initial keys. The initial
// construction (epoch 1) is always synchronous.
func New(initial []uint64, p Params, seed uint64) (*Dict, error) {
	if p.Epsilon == 0 {
		p.Epsilon = 0.25
	}
	if p.Epsilon < 0 || p.Epsilon > 1 {
		return nil, fmt.Errorf("dynamic: epsilon %v outside (0, 1]", p.Epsilon)
	}
	d := &Dict{
		p:           p,
		seed:        seed,
		readProbes:  cellprobe.NewStripedCounter(),
		writeProbes: cellprobe.NewStripedCounter(),
		casRetries:  cellprobe.NewStripedCounter(),
		absorbed:    cellprobe.NewStripedCounter(),
	}
	d.scratch.New = func() any { return new(core.QueryScratch) }
	d.batch.New = func() any { return new(batchState) }
	d.cond = sync.NewCond(&d.mu)
	if err := scheme.ValidateKeys(initial); err != nil {
		return nil, fmt.Errorf("dynamic: %w", err)
	}
	d.n.Store(int64(len(initial)))
	d.mu.Lock()
	defer d.mu.Unlock()
	d.epoch = 1
	keys := append([]uint64(nil), initial...)
	started := time.Now()
	d.emit(events.RebuildStart, 1, uint64(len(keys)), 0)
	base, err := core.Build(keys, d.p.Static, d.seed+1)
	d.rebuilding = true
	d.finishRebuild(base, err, 1, keys, started)
	if d.rebuildErr != nil {
		return nil, d.rebuildErr
	}
	return d, nil
}

// newBuffer sizes and seeds the buffer of epoch ep for a snapshot of n keys.
func (d *Dict) newBuffer(n, ep int) *buffer {
	threshold := int(d.p.Epsilon * float64(max(n, 1)))
	if threshold < 1 {
		threshold = 1
	}
	// Slot capacity 4× the threshold keeps the load factor ≤ 1/4 at the
	// trigger point (and ≤ 1/2 at the writers' hard cap) so probe chains
	// stay O(1) in expectation.
	width := 4 * threshold
	if width < 8 {
		width = 8
	}
	b := &buffer{
		acct:      cellprobe.New(bufRows, width),
		slots:     make([]atomic.Uint64, width),
		width:     width,
		threshold: threshold,
		hardCap:   width / 2,
	}
	r := rng.New(d.seed ^ uint64(ep)<<32)
	h := hash.NewPairwise(r, uint64(width))
	params := cellprobe.Cell{Lo: h.A, Hi: h.B}
	for j := 0; j < width; j++ {
		b.acct.Set(bufParamRow, j, params)
	}
	return b
}

// snapshotKeys derives the current key set from an epoch whose buffer has
// been sealed and drained: the snapshot's keys minus tombstones, plus the
// buffer's live inserts, reconciled with the absorber's per-key final
// states (last write wins, in phase-seal order). Hot keys never hold
// buffer entries within their own epoch — the absorbed path bypasses the
// claim protocol — so the two sources never conflict. The order (base
// order, then slot order, then absorbed extras in seed order) is
// deterministic given a deterministic update sequence. Callers hold d.mu.
func snapshotKeys(e *epoch) []uint64 {
	var inserted []uint64
	deleted := make(map[uint64]bool)
	for i := range e.buf.slots {
		tag, key := unpackSlot(e.buf.slots[i].Load())
		switch tag {
		case slotInserted:
			inserted = append(inserted, key)
		case slotDeleted:
			deleted[key] = true
		}
	}
	var absorbedIn []uint64
	if e.hot != nil {
		e.hot.finalStates(func(key uint64, present bool) {
			switch {
			case present && !e.baseSet[key]:
				absorbedIn = append(absorbedIn, key)
			case !present && e.baseSet[key]:
				deleted[key] = true
			}
		})
	}
	keys := make([]uint64, 0, len(e.baseKeys)+len(inserted)+len(absorbedIn))
	for _, k := range e.baseKeys {
		if !deleted[k] {
			keys = append(keys, k)
		}
	}
	keys = append(keys, inserted...)
	return append(keys, absorbedIn...)
}

// startRebuild seals the current buffer, snapshots the key set and kicks off
// construction of the next epoch. Callers hold d.mu.
func (d *Dict) startRebuild() {
	d.rebuilding = true
	d.epoch++
	ep := d.epoch
	e := d.cur.Load()
	// Fence: after seal returns, no lock-free writer is inside the buffer
	// and none will enter again, so the slot scan below observes every
	// committed claim. Later writers divert to the mutex path and land in
	// the delta log. The same fence covers the absorber: its state words
	// and logs are only touched between the writer count's increment and
	// decrement, so the scan reads each hot key's final (phase-seal-order
	// last) write.
	e.buf.seal()
	d.emit(events.EpochSealed, uint64(ep), uint64(e.buf.buffered.Load()), 0)
	if d.p.Hot != nil {
		hotKeys, absorbedOps := 0, uint64(0)
		if e.hot != nil {
			hotKeys, absorbedOps = len(e.hot.keys), e.hot.ops()
		}
		d.stats.PhaseSeals++
		if d.p.Metrics != nil {
			d.p.Metrics.PhaseSealed(hotKeys, absorbedOps)
		}
	}
	keys := snapshotKeys(e)
	d.delta = nil
	started := time.Now()
	d.emit(events.RebuildStart, uint64(ep), uint64(len(keys)), 0)
	if d.p.SyncRebuild {
		base, err := core.Build(keys, d.p.Static, d.seed+uint64(ep))
		d.finishRebuild(base, err, ep, keys, started)
		return
	}
	go func() {
		base, err := core.Build(keys, d.p.Static, d.seed+uint64(ep))
		d.mu.Lock()
		defer d.mu.Unlock()
		d.finishRebuild(base, err, ep, keys, started)
	}()
}

// finishRebuild publishes epoch ep around the freshly built base, replaying
// any updates that arrived while the build ran. Callers hold d.mu.
func (d *Dict) finishRebuild(base *core.Dict, err error, ep int, keys []uint64, started time.Time) {
	d.rebuilding = false
	defer d.cond.Broadcast()
	if err != nil {
		durNs := time.Since(started).Nanoseconds()
		if d.p.Metrics != nil {
			d.p.Metrics.RebuildFailed(durNs)
		}
		d.emit(events.RebuildEnd, events.MarkFailed(uint64(ep)), uint64(len(keys)), uint64(durNs))
		d.rebuildErr = fmt.Errorf("dynamic: rebuild %d: %w", ep, err)
		return
	}
	n := len(keys)
	set := make(map[uint64]bool, n)
	for _, k := range keys {
		set[k] = true
	}
	ne := &epoch{base: base, buf: d.newBuffer(n, ep), baseKeys: keys, baseSet: set}
	if d.p.Hot != nil {
		// Phase boundary: reclassify the hot set from the sealed phase's
		// per-key absorbed-write counts, then seed the next absorber with
		// each hot key's membership in the snapshot just built. Promotion
		// and demotion happen only here — the published index is immutable —
		// so an in-flight writer can never claim a buffer slot for a key
		// the snapshot scan would also read from the overlay.
		var current []uint64
		writes := func(uint64) uint64 { return 0 }
		if old := d.cur.Load(); old != nil && old.hot != nil {
			current = old.hot.keys
			writes = old.hot.writesOf
		}
		if hot := d.p.Hot.Reclassify(current, writes); len(hot) > 0 {
			ne.hot = newAbsorber(hot, func(k uint64) bool { return set[k] }, 0)
		}
	}
	// Replay the delta in log order. The ops were serialized by d.mu against
	// the sealed old buffer, so replaying them one by one reconstructs the
	// same membership on the new epoch; replay may exceed the hard cap (the
	// trailing threshold check below rebuilds again rather than lose an op).
	// Ops on keys hot in the new epoch route to its overlay instead of the
	// buffer, keeping the no-buffer-entries invariant for hot keys.
	for _, u := range d.delta {
		if cerr := d.applyReplay(ne, u); cerr != nil {
			d.rebuildErr = fmt.Errorf("dynamic: rebuild %d replay: %w", ep, cerr)
			return
		}
	}
	d.delta = nil
	if d.p.Sink != nil {
		// Installed before the epoch pointer is published: no reader has the
		// new tables yet, so SetSink cannot race a probe.
		base.Table().SetSink(d.p.Sink)
		ne.buf.acct.SetSink(stepSink{sink: d.p.Sink, off: base.MaxProbes()})
	}
	durNs := time.Since(started).Nanoseconds()
	if d.p.Metrics != nil {
		d.p.Metrics.RebuildDone(n, durNs)
		d.p.Metrics.SetDeltaDepth(int(ne.buf.buffered.Load()))
		if d.p.Hot != nil {
			hotKeys := 0
			if ne.hot != nil {
				hotKeys = len(ne.hot.keys)
			}
			d.p.Metrics.SetPhase(hotKeys)
		}
	}
	// Phase transitions are derived from the published states on either side
	// of the swap, so PhaseSplit and PhaseJoined strictly alternate per
	// dictionary (a split epoch followed by another split epoch is not a
	// transition).
	prevHot := 0
	if old := d.cur.Load(); old != nil && old.hot != nil {
		prevHot = len(old.hot.keys)
	}
	d.cur.Store(ne)
	d.emit(events.RebuildEnd, uint64(ep), uint64(n), uint64(durNs))
	if d.p.ShardEvents {
		d.emit(events.ShardRebuild, uint64(ep), uint64(n), uint64(durNs))
	}
	newHot := 0
	if ne.hot != nil {
		newHot = len(ne.hot.keys)
	}
	switch {
	case newHot > 0 && prevHot == 0:
		d.emit(events.PhaseSplit, uint64(ep), uint64(newHot), 0)
	case newHot == 0 && prevHot > 0:
		d.emit(events.PhaseJoined, uint64(ep), 0, 0)
	}
	d.stats.Epoch = ep
	d.stats.SnapshotN = n
	d.stats.RebuildKeys += n
	d.stats.RebuildCells = base.Table().Size() + ne.buf.acct.Size()
	d.stats.StaticHashTries = base.Report().HashTries
	// Replayed updates may already exceed the new, possibly smaller
	// threshold — go again rather than let writers hit the hard cap.
	if int(ne.buf.occupied.Load()) >= ne.buf.threshold {
		d.startRebuild()
	}
}

// applyReplay re-applies one delta-logged operation to the epoch being
// built: keys hot in the new epoch land in its overlay (the op was already
// committed and counted when it first ran against the sealed old epoch),
// everything else claims a buffer slot. Callers hold d.mu; ne is not yet
// published, so there is no concurrency to fence.
func (d *Dict) applyReplay(ne *epoch, u update) error {
	if h := ne.hot; h != nil {
		if ent := h.entry(u.key); ent != nil {
			h.absorb(ent, u.del)
			return nil
		}
	}
	_, err := d.claim(ne, u.key, u.del, ne.buf.width)
	return err
}

// claim walks x's probe chain in e's buffer and publishes one update by CAS
// — the lock-free write path. capLimit bounds the occupancy a fresh claim
// may reach (hardCap for live writers, the full width for delta replay).
// It is safe for any number of concurrent callers on an unsealed buffer;
// the rebuild fence (writer accounting) is the caller's responsibility.
func (d *Dict) claim(e *epoch, x uint64, del bool, capLimit int) (claimOutcome, error) {
	b := e.buf
	seed := d.seed ^ x
	if del {
		seed ^= 0xdead
	}
	h := b.params(rng.New(seed))
	probes := uint64(1) // the step-0 parameter probe
	var retries uint64
	outcome := claimNoChange
	var err error

	p := int(h.Eval(x))
walk:
	for step := 1; ; step++ {
		if step > b.width+1 {
			err = fmt.Errorf("dynamic: buffer scan wrapped (corrupt table?)")
			break walk
		}
		b.acct.Probe(step, bufSlotRow, p)
		w := b.slots[p].Load()
		probes++
	slot:
		for {
			tag, key := unpackSlot(w)
			switch {
			case tag == slotEmpty:
				// End of the chain: x has no live entry. The membership
				// verdict now rests on the immutable snapshot set.
				if del != e.baseSet[x] {
					// Insert of a snapshot key with no tombstone, or delete
					// of a key that is nowhere: no change.
					break walk
				}
				claimTag := slotInserted
				if del {
					claimTag = slotDeleted // tombstone a snapshot key
				}
				// Pre-reserve occupancy so concurrent claims can never push
				// the load past capLimit (which keeps chains short and this
				// walk's wrap bound unreachable).
				if int(b.occupied.Add(1)) > capLimit {
					b.occupied.Add(-1)
					outcome = claimFull
					break walk
				}
				nw, ok := packSlot(claimTag, x)
				if !ok {
					b.occupied.Add(-1)
					err = fmt.Errorf("dynamic: key %d does not pack into a slot word", x)
					break walk
				}
				if b.slots[p].CompareAndSwap(w, nw) {
					probes++ // the publishing slot write
					b.buffered.Add(1)
					outcome = claimChanged
					break walk
				}
				// Lost the slot to a racing writer. Re-read and re-analyze
				// the same slot: it may now hold x itself.
				b.occupied.Add(-1)
				retries++
				w = b.slots[p].Load()
				probes++
				continue slot
			case key == x && tag == slotInserted:
				if !del {
					break walk // already a member (buffer insert)
				}
				if nw, _ := packSlot(slotVacated, x); b.slots[p].CompareAndSwap(w, nw) {
					probes++
					b.buffered.Add(-1)
					outcome = claimChanged
				} else {
					// inserted(x) only ever transitions to vacated(x): a
					// racing Delete won, so the membership change is theirs.
					retries++
				}
				break walk
			case key == x && tag == slotDeleted:
				if del {
					break walk // already tombstoned
				}
				// Re-inserting a tombstoned snapshot key: drop the
				// tombstone; the static structure already holds the key.
				if nw, _ := packSlot(slotVacated, x); b.slots[p].CompareAndSwap(w, nw) {
					probes++
					b.buffered.Add(-1)
					outcome = claimChanged
				} else {
					retries++
				}
				break walk
			default:
				break slot // another key, or vacated: the chain continues
			}
		}
		p = (p + 1) % b.width
	}
	d.writeProbes.Add(probes)
	if retries > 0 {
		d.casRetries.Add(retries)
	}
	if d.p.Metrics != nil {
		d.p.Metrics.WriteClaim(probes, retries)
	}
	if d.p.Hot != nil {
		d.p.Hot.ObserveClaim(x, probes, retries)
	}
	return outcome, err
}

// Contains answers membership for x through recorded probes on both the
// buffer and the static tables of the current epoch. It takes no lock and
// writes no shared cache line beyond the striped probe counter; its working
// memory comes from a pooled scratch, so the steady-state read path
// performs no heap allocation.
func (d *Dict) Contains(x uint64, r rng.Source) (bool, error) {
	e := d.cur.Load()
	sc := d.scratch.Get().(*core.QueryScratch)
	ok, err := d.containsEpoch(e, x, r, sc)
	d.scratch.Put(sc)
	return ok, err
}

// ContainsScratch is Contains with caller-supplied working memory, pinning
// the current epoch for the single query. The facade's telemetry path uses
// it with a capture-armed scratch to trace the static probes of a query
// (buffer probes are not captured — their cell indices are epoch-local).
func (d *Dict) ContainsScratch(x uint64, r rng.Source, sc *core.QueryScratch) (bool, error) {
	return d.containsEpoch(d.cur.Load(), x, r, sc)
}

// containsEpoch answers membership against one pinned epoch. Absorbed-hot
// keys resolve on the overlay's committed-state word before any buffer
// probe, so a reader observes split-phase writes the instant they land.
func (d *Dict) containsEpoch(e *epoch, x uint64, r rng.Source, sc *core.QueryScratch) (bool, error) {
	if h := e.hot; h != nil {
		if ent := h.entry(x); ent != nil {
			d.readProbes.Add(1)
			return ent.state.Load() == absorbPresent, nil
		}
	}
	b := e.buf
	h := b.params(r)
	_, tag, found, probes, err := b.find(x, h)
	if err != nil {
		return false, err
	}
	d.readProbes.Add(probes + 1) // chain + the parameter probe
	if found {
		switch tag {
		case slotInserted:
			return true, nil
		case slotDeleted:
			return false, nil
		}
	}
	d.readProbes.Add(uint64(e.base.MaxProbes()))
	return e.base.ContainsScratch(x, r, sc)
}

// batchCursor feeds a batch through the epoch's buffer pre-check and hands
// the static wavefront only the queries the buffer cannot resolve. It walks
// the keys in batch order and performs, for each key, exactly the probe and
// randomness sequence the sequential path performs — one buffer parameter
// draw, the chain walk (no draws) — before either writing the answer
// directly (buffer hit or tombstone) or yielding the key for wavefront
// admission, where its static random budget is drawn immediately. The
// shared random stream is therefore consumed in exactly sequential order.
type batchCursor struct {
	d    *Dict
	e    *epoch
	r    rng.Source
	keys []uint64
	out  []bool
	pos  int
	err  error
}

func (c *batchCursor) NextQuery() (int, uint64, bool) {
	for c.pos < len(c.keys) && c.err == nil {
		i := c.pos
		c.pos++
		x := c.keys[i]
		if h := c.e.hot; h != nil {
			if ent := h.entry(x); ent != nil {
				c.d.readProbes.Add(1)
				c.out[i] = ent.state.Load() == absorbPresent
				continue
			}
		}
		b := c.e.buf
		h := b.params(c.r)
		_, tag, found, probes, err := b.find(x, h)
		if err != nil {
			c.err = err
			return 0, 0, false
		}
		c.d.readProbes.Add(probes + 1) // chain + the parameter probe
		if found {
			switch tag {
			case slotInserted:
				c.out[i] = true
				continue
			case slotDeleted:
				c.out[i] = false
				continue
			}
		}
		c.d.readProbes.Add(uint64(c.e.base.MaxProbes()))
		return i, x, true
	}
	return 0, 0, false
}

// batchState bundles the per-batch working memory — the core scratch with
// its wavefront arena plus the buffer cursor — into one poolable unit.
type batchState struct {
	sc  core.QueryScratch
	cur batchCursor
}

// ContainsBatch answers membership for every keys[i] into out[i]. The whole
// batch runs against a single epoch snapshot loaded once up front — one
// atomic pointer load and one scratch fetch amortized over the batch — so
// concurrent updates that publish a new epoch mid-batch are not observed.
// Queries the buffer cannot resolve flow through the static dictionary's
// wavefront scheduler (core.ContainsWavefront), overlapping the cache
// misses of up to BatchGroup probe chains; answers and per-query probes are
// identical to a sequential loop over the batch. out must be at least as
// long as keys. It stops at the first corrupt-buffer or corrupt-table
// error (queries in flight at that point are abandoned).
func (d *Dict) ContainsBatch(keys []uint64, out []bool, r rng.Source) error {
	if len(out) < len(keys) {
		return fmt.Errorf("dynamic: ContainsBatch output length %d < %d keys", len(out), len(keys))
	}
	st := d.batch.Get().(*batchState)
	err := d.containsBatchEpoch(d.cur.Load(), keys, out, r, st)
	st.cur = batchCursor{} // drop epoch/slice references before pooling
	d.batch.Put(st)
	return err
}

// ContainsBatchScratch is ContainsBatch with caller-supplied working
// memory, pinning the current epoch for the whole batch. The equivalence
// battery uses it with a batch-capture-armed scratch to compare the static
// probe cells of wavefront and sequential answers (buffer probes are not
// captured — their cell indices are epoch-local).
func (d *Dict) ContainsBatchScratch(keys []uint64, out []bool, r rng.Source, sc *core.QueryScratch) error {
	if len(out) < len(keys) {
		return fmt.Errorf("dynamic: ContainsBatch output length %d < %d keys", len(out), len(keys))
	}
	e := d.cur.Load()
	cur := batchCursor{d: d, e: e, r: r, keys: keys, out: out}
	if err := e.base.ContainsWavefront(&cur, out, r, sc); err != nil {
		return err
	}
	return cur.err
}

func (d *Dict) containsBatchEpoch(e *epoch, keys []uint64, out []bool, r rng.Source, st *batchState) error {
	st.cur = batchCursor{d: d, e: e, r: r, keys: keys, out: out}
	if err := e.base.ContainsWavefront(&st.cur, out, r, &st.sc); err != nil {
		return err
	}
	return st.cur.err
}

// Insert adds x. It reports whether the dictionary changed; crossing the
// buffer threshold triggers a rebuild (background unless SyncRebuild).
// Safe for any number of concurrent callers.
func (d *Dict) Insert(x uint64) (bool, error) {
	if x >= hash.MaxKey {
		return false, fmt.Errorf("dynamic: key %d outside universe", x)
	}
	return d.mutate(x, false)
}

// Delete removes x. It reports whether the dictionary changed. Safe for any
// number of concurrent callers.
func (d *Dict) Delete(x uint64) (bool, error) {
	return d.mutate(x, true)
}

// mutate is the lock-free write fast path: enter the current epoch's buffer
// through the writer fence, claim a slot by CAS, and fall back to the mutex
// only when the buffer is sealed (rebuild snapshot in progress) or at its
// occupancy hard cap.
func (d *Dict) mutate(x uint64, del bool) (bool, error) {
	e := d.cur.Load()
	b := e.buf
	b.writers.Add(1)
	// The fence: writers increments before the sealed check, the sealer
	// stores sealed before waiting on writers (both seq-cst), so either we
	// see sealed here and retreat, or the sealer waits for our claim — a
	// buffer slot or an absorbed overlay write alike.
	if b.sealed.Load() {
		b.writers.Add(-1)
		return d.mutateSlow(x, del)
	}
	if h := e.hot; h != nil {
		if ent := h.entry(x); ent != nil {
			// Split-phase absorbed write: wait-free, no buffer traffic, no
			// occupancy pre-reservation — hot keys cannot fill the buffer.
			changed := h.absorb(ent, del)
			b.writers.Add(-1)
			d.absorbed.Add(1)
			if d.p.Metrics != nil {
				d.p.Metrics.WriteAbsorbed()
			}
			if changed {
				d.commitChange(del)
			}
			return changed, nil
		}
	}
	if int(b.occupied.Load()) >= b.hardCap {
		b.writers.Add(-1)
		return d.mutateSlow(x, del)
	}
	outcome, err := d.claim(e, x, del, b.hardCap)
	b.writers.Add(-1)
	if err != nil {
		return false, err
	}
	if d.p.Hot != nil && d.p.Hot.Pressure() {
		// The classifier wants a cool key promoted; promotion happens only
		// at a phase boundary, so turn the phase by starting a rebuild.
		d.mu.Lock()
		if !d.rebuilding && d.rebuildErr == nil && d.cur.Load() == e {
			d.startRebuild()
		}
		d.mu.Unlock()
	}
	if outcome == claimFull {
		return d.mutateSlow(x, del)
	}
	if outcome == claimNoChange {
		return false, nil
	}
	d.commitChange(del)
	if int(b.occupied.Load()) >= b.threshold {
		d.mu.Lock()
		// Re-check under the lock: another writer may have triggered the
		// rebuild (or published a whole new epoch) while we raced here.
		if !d.rebuilding && d.rebuildErr == nil && d.cur.Load() == e &&
			int(b.occupied.Load()) >= b.threshold {
			d.startRebuild()
		}
		d.mu.Unlock()
	}
	return true, nil
}

// commitChange records one successful membership change.
func (d *Dict) commitChange(del bool) {
	if del {
		d.n.Add(-1)
	} else {
		d.n.Add(1)
	}
	d.updates.Add(1)
}

// mutateSlow is the mutex path: taken when the fast path found the buffer
// sealed (a rebuild is scanning or building) or at its hard cap. Under the
// lock it applies the update to whatever epoch is current — including a
// sealed buffer, whose readers are still live and must observe the update —
// and logs sealed-buffer operations for replay into the next epoch.
func (d *Dict) mutateSlow(x uint64, del bool) (bool, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	var pauseStart time.Time
	paused := false
	endPause := func() {
		if paused && d.p.Metrics != nil {
			d.p.Metrics.WriterPaused(time.Since(pauseStart).Nanoseconds())
		}
	}
	for {
		if d.rebuildErr != nil {
			endPause()
			return false, d.rebuildErr
		}
		e := d.cur.Load()
		b := e.buf
		if h := e.hot; h != nil {
			if ent := h.entry(x); ent != nil {
				// Absorbed write under the mutex: the overlay of the still-
				// published epoch must observe it (readers pin that epoch),
				// and if its snapshot scan has already run the op is logged
				// for replay into the next epoch's overlay or buffer.
				changed := h.absorb(ent, del)
				d.absorbed.Add(1)
				if d.p.Metrics != nil {
					d.p.Metrics.WriteAbsorbed()
				}
				endPause()
				if !changed {
					return false, nil
				}
				d.commitChange(del)
				if b.sealed.Load() && d.rebuilding {
					d.delta = append(d.delta, update{key: x, del: del})
					if d.p.Metrics != nil {
						d.p.Metrics.SetDeltaDepth(len(d.delta))
					}
				}
				return true, nil
			}
		}
		if int(b.occupied.Load()) < b.hardCap {
			// Either a live (unsealed) buffer — our claim races only other
			// claims, which CAS handles — or a sealed buffer mid-rebuild,
			// where the mutex makes us its only writer.
			outcome, err := d.claim(e, x, del, b.hardCap)
			if err != nil {
				endPause()
				return false, err
			}
			if outcome != claimFull {
				endPause()
				if outcome == claimNoChange {
					return false, nil
				}
				d.commitChange(del)
				if b.sealed.Load() && d.rebuilding {
					// The snapshot scan has already run: log for replay so
					// the change survives the epoch swap.
					d.delta = append(d.delta, update{key: x, del: del})
					if d.p.Metrics != nil {
						d.p.Metrics.SetDeltaDepth(len(d.delta))
					}
				}
				if !d.rebuilding && int(b.occupied.Load()) >= b.threshold {
					d.startRebuild()
				}
				return true, nil
			}
		}
		// At the hard cap: start the rebuild if nobody has, else wait for
		// the epoch swap and retry against the fresh buffer.
		if !d.rebuilding {
			d.startRebuild()
			continue
		}
		if !paused {
			paused = true
			pauseStart = time.Now()
		}
		d.cond.Wait()
	}
}

// Len returns the current number of keys without taking a lock.
func (d *Dict) Len() int { return int(d.n.Load()) }

// Quiesce blocks until no rebuild is in flight. Call it before attaching
// probe recorders or reading Stats that must reflect a settled epoch.
func (d *Dict) Quiesce() {
	d.mu.Lock()
	for d.rebuilding {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// Rebuilding reports whether a background rebuild is currently in flight.
func (d *Dict) Rebuilding() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.rebuilding
}

// Stats returns a snapshot of the dynamic statistics. It is safe to call
// concurrently with writers and rebuilds (counters are atomic or striped);
// epoch-dependent fields settle only after Quiesce.
func (d *Dict) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	s.Len = int(d.n.Load())
	s.Updates = int(d.updates.Load())
	e := d.cur.Load()
	s.Buffered = int(e.buf.buffered.Load())
	s.BufferSlots = e.buf.width
	s.ReadProbes = d.readProbes.Sum()
	s.WriteProbes = d.writeProbes.Sum()
	s.WriteCASRetries = d.casRetries.Sum()
	s.AbsorbedWrites = d.absorbed.Sum()
	if e.hot != nil {
		s.HotKeys = len(e.hot.keys)
		s.SplitPhase = true
	}
	return s
}

// BaseTable exposes the current epoch's static table (for contention
// recording). The result is stable only while the dictionary is quiescent.
func (d *Dict) BaseTable() *cellprobe.Table { return d.cur.Load().base.Table() }

// Base exposes the current epoch's static snapshot itself, so exact
// contention can be computed for the structure live queries currently fall
// through to (the telemetry live-vs-exact comparison). Like BaseTable, the
// result is stable only while the dictionary is quiescent — a concurrent
// rebuild publishes a new snapshot.
func (d *Dict) Base() *core.Dict { return d.cur.Load().base }

// BufferTable exposes the current epoch's update-buffer table. Slot cells
// read as zero through it — slot data lives in atomic words — but probe
// accounting (recording, size) is exact.
func (d *Dict) BufferTable() *cellprobe.Table { return d.cur.Load().buf.acct }

// MaxReadProbes bounds the probes of one Contains call in the common case
// (buffer chain of length 1): one parameter probe, one slot probe, plus the
// static dictionary's probes. Longer chains add one probe each.
func (d *Dict) MaxReadProbes() int { return 2 + d.cur.Load().base.MaxProbes() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
