// Package dynamic extends the static low-contention dictionary to support
// insertions and deletions — the direction the paper's §4 names as future
// work ("study the contention caused by the updates in dynamic data
// structures").
//
// The design is global rebuilding over the Theorem 3 structure:
//
//   - a static core.Dict holds a snapshot S₀;
//   - a small open-addressing buffer (its own cell-probe table, with
//     replicated hash parameters) absorbs updates: inserted keys, and
//     tombstones for deleted snapshot keys;
//   - queries check the buffer (expected O(1) probes at the buffer's tiny
//     load factor), then fall through to the static structure;
//   - when the buffer holds ε·n entries the whole dictionary is rebuilt
//     from the current key set, giving amortized O(1/ε) work per update
//     on top of the static O(n) construction.
//
// Read contention stays within a constant of the static dictionary's: the
// buffer's parameter row is replicated and its slot probes are spread by
// hashing. Update contention is the interesting quantity the paper asks
// about — every writer must touch the buffer's occupancy region, and the
// package counts read and write probes separately (Stats.ReadProbes,
// Stats.WriteProbes) so experiment X1 can quantify exactly that.
package dynamic

import (
	"fmt"
	"sync/atomic"

	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/hash"
	"repro/internal/rng"
)

// Slot tags in the buffer table (cell.Hi).
const (
	slotEmpty    = uint64(0)
	slotInserted = uint64(1)
	slotDeleted  = uint64(2) // tombstone for a snapshot key
	slotVacated  = uint64(3) // removed buffer entry; keeps probe chains intact
)

const (
	bufParamRow = 0
	bufSlotRow  = 1
	bufRows     = 2
)

// Params configures the dynamic dictionary.
type Params struct {
	// Epsilon is the buffer fraction: a rebuild triggers after
	// ⌈Epsilon·max(n,1)⌉ buffered updates. Must be in (0, 1]. Default 0.25.
	Epsilon float64
	// Static configures the underlying static construction.
	Static core.Params
}

// Stats describes the dictionary's dynamic behaviour.
type Stats struct {
	Len             int    // current number of keys
	Epoch           int    // rebuilds performed
	SnapshotN       int    // keys in the current static snapshot
	Buffered        int    // live buffer entries (inserts + tombstones)
	BufferSlots     int    // buffer slot capacity
	RebuildKeys     int    // total keys across all rebuilds (amortization numerator)
	Updates         int    // total Insert/Delete calls that changed state
	ReadProbes      uint64 // probes issued by Contains (static probes counted at MaxProbes)
	WriteProbes     uint64 // probes and writes issued by Insert/Delete
	RebuildCells    int    // cells written by the last rebuild
	StaticHashTries int    // hash draws of the last rebuild
}

// Dict is a dynamic low-contention dictionary. It is not safe for
// concurrent mutation; concurrent readers are safe between updates.
type Dict struct {
	p       Params
	seed    uint64
	epoch   int
	base    *core.Dict
	members map[uint64]bool // current key set (oracle for rebuilds)

	buf       *cellprobe.Table
	bufHash   hash.Pairwise
	bufWidth  int
	buffered  int // occupied (non-vacated) entries
	occupied  int // slots not empty (including vacated) — drives rebuild
	threshold int

	// Probe counters are atomic: reads may run concurrently with each
	// other (and with Stats), though not with updates.
	readProbes  atomic.Uint64
	writeProbes atomic.Uint64

	stats Stats
}

// New builds a dynamic dictionary over the initial keys.
func New(initial []uint64, p Params, seed uint64) (*Dict, error) {
	if p.Epsilon == 0 {
		p.Epsilon = 0.25
	}
	if p.Epsilon < 0 || p.Epsilon > 1 {
		return nil, fmt.Errorf("dynamic: epsilon %v outside (0, 1]", p.Epsilon)
	}
	d := &Dict{p: p, seed: seed, members: make(map[uint64]bool, len(initial))}
	for _, k := range initial {
		if k >= hash.MaxKey {
			return nil, fmt.Errorf("dynamic: key %d outside universe", k)
		}
		if d.members[k] {
			return nil, fmt.Errorf("dynamic: duplicate key %d", k)
		}
		d.members[k] = true
	}
	if err := d.rebuild(); err != nil {
		return nil, err
	}
	return d, nil
}

// rebuild reconstructs the static snapshot and an empty buffer from the
// current member set.
func (d *Dict) rebuild() error {
	keys := make([]uint64, 0, len(d.members))
	for k := range d.members {
		keys = append(keys, k)
	}
	d.epoch++
	base, err := core.Build(keys, d.p.Static, d.seed+uint64(d.epoch))
	if err != nil {
		return fmt.Errorf("dynamic: rebuild %d: %w", d.epoch, err)
	}
	d.base = base

	n := len(keys)
	d.threshold = int(d.p.Epsilon * float64(max(n, 1)))
	if d.threshold < 1 {
		d.threshold = 1
	}
	// Slot capacity 4× the threshold keeps the load factor ≤ 1/4 so probe
	// chains stay O(1) in expectation.
	d.bufWidth = 4 * d.threshold
	if d.bufWidth < 8 {
		d.bufWidth = 8
	}
	d.buf = cellprobe.New(bufRows, d.bufWidth)
	r := rng.New(d.seed ^ uint64(d.epoch)<<32)
	d.bufHash = hash.NewPairwise(r, uint64(d.bufWidth))
	params := cellprobe.Cell{Lo: d.bufHash.A, Hi: d.bufHash.B}
	for j := 0; j < d.bufWidth; j++ {
		d.buf.Set(bufParamRow, j, params)
	}
	d.buffered = 0
	d.occupied = 0

	d.stats.Epoch = d.epoch
	d.stats.SnapshotN = n
	d.stats.RebuildKeys += n
	d.stats.RebuildCells = base.Table().Size() + d.buf.Size()
	d.stats.StaticHashTries = base.Report().HashTries
	return nil
}

// bufferFind walks the probe chain for x. It returns the slot holding x
// (found=true) or the first empty slot (found=false). Probes are recorded
// at steps 1, 2, ... on the buffer table; callers already probed the
// parameter row at step 0.
func (d *Dict) bufferFind(x uint64, h hash.Pairwise) (slot int, tag uint64, found bool, probes uint64, err error) {
	p := int(h.Eval(x))
	for step := 1; step <= d.bufWidth+1; step++ {
		c := d.buf.Probe(step, bufSlotRow, p)
		probes++
		switch {
		case c.Hi == slotEmpty:
			return p, slotEmpty, false, probes, nil
		case c.Lo == x && c.Hi != slotVacated:
			return p, c.Hi, true, probes, nil
		}
		p = (p + 1) % d.bufWidth
	}
	return 0, 0, false, probes, fmt.Errorf("dynamic: buffer scan wrapped (corrupt table?)")
}

// readBufParams probes a random replica of the buffer parameter row.
func (d *Dict) readBufParams(r *rng.RNG) (hash.Pairwise, error) {
	c := d.buf.Probe(0, bufParamRow, r.Intn(d.bufWidth))
	h := hash.Pairwise{A: c.Lo, B: c.Hi, M: uint64(d.bufWidth)}
	return h, nil
}

// Contains answers membership for x through recorded probes on both the
// buffer and the static tables.
func (d *Dict) Contains(x uint64, r *rng.RNG) (bool, error) {
	h, err := d.readBufParams(r)
	if err != nil {
		return false, err
	}
	_, tag, found, probes, err := d.bufferFind(x, h)
	if err != nil {
		return false, err
	}
	d.readProbes.Add(probes + 1) // chain + the parameter probe
	if found {
		switch tag {
		case slotInserted:
			return true, nil
		case slotDeleted:
			return false, nil
		}
	}
	d.readProbes.Add(uint64(d.base.MaxProbes()))
	return d.base.Contains(x, r)
}

// Insert adds x. It reports whether the dictionary changed, and rebuilds if
// the buffer is full.
func (d *Dict) Insert(x uint64) (bool, error) {
	if x >= hash.MaxKey {
		return false, fmt.Errorf("dynamic: key %d outside universe", x)
	}
	if d.members[x] {
		return false, nil
	}
	r := rng.New(d.seed ^ x)
	h, err := d.readBufParams(r)
	if err != nil {
		return false, err
	}
	slot, tag, found, probes, err := d.bufferFind(x, h)
	if err != nil {
		return false, err
	}
	d.writeProbes.Add(probes + 2) // chain + parameter probe + slot write
	d.members[x] = true
	d.stats.Updates++
	if found && tag == slotDeleted {
		// Re-inserting a snapshot key that was tombstoned: drop the
		// tombstone; the static structure already holds it.
		d.buf.Set(bufSlotRow, slot, cellprobe.Cell{Lo: x, Hi: slotVacated})
		d.buffered--
		return true, nil
	}
	d.buf.Set(bufSlotRow, slot, cellprobe.Cell{Lo: x, Hi: slotInserted})
	d.buffered++
	d.occupied++
	if d.occupied >= d.threshold {
		return true, d.rebuild()
	}
	return true, nil
}

// Delete removes x. It reports whether the dictionary changed.
func (d *Dict) Delete(x uint64) (bool, error) {
	if !d.members[x] {
		return false, nil
	}
	r := rng.New(d.seed ^ x ^ 0xdead)
	h, err := d.readBufParams(r)
	if err != nil {
		return false, err
	}
	slot, tag, found, probes, err := d.bufferFind(x, h)
	if err != nil {
		return false, err
	}
	d.writeProbes.Add(probes + 2) // chain + parameter probe + slot write
	delete(d.members, x)
	d.stats.Updates++
	if found && tag == slotInserted {
		// The key only ever lived in the buffer.
		d.buf.Set(bufSlotRow, slot, cellprobe.Cell{Lo: x, Hi: slotVacated})
		d.buffered--
		return true, nil
	}
	// Tombstone a snapshot key.
	d.buf.Set(bufSlotRow, slot, cellprobe.Cell{Lo: x, Hi: slotDeleted})
	d.buffered++
	d.occupied++
	if d.occupied >= d.threshold {
		return true, d.rebuild()
	}
	return true, nil
}

// Len returns the current number of keys.
func (d *Dict) Len() int { return len(d.members) }

// Stats returns a snapshot of the dynamic statistics.
func (d *Dict) Stats() Stats {
	s := d.stats
	s.Len = len(d.members)
	s.Buffered = d.buffered
	s.BufferSlots = d.bufWidth
	s.ReadProbes = d.readProbes.Load()
	s.WriteProbes = d.writeProbes.Load()
	return s
}

// BaseTable exposes the static snapshot's table (for contention recording).
func (d *Dict) BaseTable() *cellprobe.Table { return d.base.Table() }

// BufferTable exposes the update buffer's table.
func (d *Dict) BufferTable() *cellprobe.Table { return d.buf }

// MaxReadProbes bounds the probes of one Contains call in the common case
// (buffer chain of length 1): one parameter probe, one slot probe, plus the
// static dictionary's probes. Longer chains add one probe each.
func (d *Dict) MaxReadProbes() int { return 2 + d.base.MaxProbes() }

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
