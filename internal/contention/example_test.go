package contention_test

import (
	"fmt"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
)

// Example computes the exact contention of the Theorem 3 dictionary under
// uniform positive queries: the max per-step cell probability, as a
// multiple of the optimal 1/s, is a small constant.
func Example() {
	keys := experiments.Keys(1024, 7)
	d, err := core.Build(keys, core.Params{}, 7)
	if err != nil {
		fmt.Println(err)
		return
	}
	q := dist.NewUniformSet(keys, "")
	res, err := contention.Exact(d, q.Support())
	if err != nil {
		fmt.Println(err)
		return
	}
	fmt.Println("ratio below 64:", res.RatioStep() < 64)
	fmt.Println("probes:", res.Probes)
	// Output:
	// ratio below 64: true
	// probes: 13
	//
}

// ExampleFlatnessOf contrasts profile shapes: a flat profile has Gini 0; a
// single spike approaches 1.
func ExampleFlatnessOf() {
	flat := contention.FlatnessOf([]float64{1, 1, 1, 1})
	spike := contention.FlatnessOf([]float64{0, 0, 0, 4})
	fmt.Printf("flat  gini %.2f entropy %.2f\n", flat.Gini, flat.NormalizedEntropy)
	fmt.Printf("spike gini %.2f entropy %.2f\n", spike.Gini, spike.NormalizedEntropy)
	// Output:
	// flat  gini 0.00 entropy 1.00
	// spike gini 0.75 entropy 0.00
}
