// Package contention measures the contention of Definition 1 for any
// dictionary built on the cell-probe substrate.
//
// Two estimators are provided. Exact computes Φ_t = q·P_t precisely from the
// structures' per-query probe specifications via difference arrays (linear
// in support size plus table size). MonteCarlo executes real queries against
// the recorded table and divides probe counts by query count. The test suite
// checks that the two agree.
package contention

import (
	"fmt"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/cellprobe"
	"repro/internal/dist"
	"repro/internal/rng"
	"repro/internal/scheme"
)

// Structure is the common surface of every dictionary in this repository,
// now defined (and registered by name) in internal/scheme; the alias keeps
// this package's historical vocabulary.
type Structure = scheme.Scheme

// ExactResult summarizes the exact contention of a structure under a query
// distribution.
type ExactResult struct {
	Structure string
	Cells     int       // table size s (the model's cell count)
	Steps     int       // probe steps with non-zero mass
	MaxStep   float64   // max over steps t and cells j of Φ_t(j)
	MaxTotal  float64   // max over cells j of Φ(j) = Σ_t Φ_t(j)
	StepMass  []float64 // probability each step executes (Σ_j Φ_t(j))
	Probes    float64   // expected probes per query (Σ_t StepMass[t])
}

// RatioStep is the headline number of every experiment table: the per-step
// contention as a multiple of the optimum 1/s. Definition 2's balanced
// schemes keep it O(1).
func (r ExactResult) RatioStep() float64 { return r.MaxStep * float64(r.Cells) }

// RatioTotal is the total contention as a multiple of 1/s.
func (r ExactResult) RatioTotal() float64 { return r.MaxTotal * float64(r.Cells) }

// Exact computes the exact contention of st under the weighted support of a
// query distribution: Φ_t(j) = Σ_x q_x · P_t(x, j), with P_t taken from
// st.ProbeSpec. The support weights should sum to 1.
//
// The computation fans out over GOMAXPROCS workers (see ExactWorkers); the
// result is bit-identical to the serial path for every worker count.
func Exact(st Structure, support []dist.Weighted) (ExactResult, error) {
	return ExactWorkers(st, support, 0)
}

// NormalizeSupport validates a caller-supplied weighted support and returns
// it merged (duplicate keys summed), normalized to total mass 1, and sorted
// by key — the form Exact assumes. Zero-weight points are dropped. It
// rejects empty supports, non-finite or negative weights, and zero total
// mass. Callers passing distribution supports from outside the dist package
// (the facade's weighted telemetry comparison) sanitize through this before
// analysis.
func NormalizeSupport(support []dist.Weighted) ([]dist.Weighted, error) {
	set, err := dist.NewWeightedSet(support, "")
	if err != nil {
		return nil, fmt.Errorf("contention: %w", err)
	}
	return set.Support(), nil
}

// ExactWorkers is Exact with an explicit worker count; workers <= 0 selects
// GOMAXPROCS and workers == 1 is the serial reference path. Parallelism
// changes no float: per-key specs carry no floating-point state, each probe
// step's difference array and prefix scan are computed by exactly one
// worker iterating the support in key order, and the per-step contention
// vectors are merged into the running totals in increasing step order — the
// same additions, in the same order, as the serial path.
//
// Requests beyond GOMAXPROCS are clamped: the phase-2 workers are pure
// compute with no blocking, so oversubscribing cores only adds scheduler
// churn (measured as a 0.65× "speedup" when two workers shared one core).
// Because every worker count is bit-identical, clamping changes no result.
func ExactWorkers(st Structure, support []dist.Weighted, workers int) (ExactResult, error) {
	if maxw := runtime.GOMAXPROCS(0); workers <= 0 || workers > maxw {
		workers = maxw
	}
	if workers == 1 {
		return exactSerial(st, support)
	}
	cells := st.Table().Size()
	specs := make([]cellprobe.ProbeSpec, len(support))
	steps := 0

	// Phase 1: build and validate the per-key probe specs, sharded over
	// contiguous key ranges. Workers stop at their shard's first invalid
	// spec; the lowest erroring shard holds the globally first bad key, so
	// the reported error matches the serial scan's.
	chunk := (len(support) + workers - 1) / workers
	if chunk < 1 {
		chunk = 1
	}
	shards := (len(support) + chunk - 1) / chunk
	specErrs := make([]error, shards)
	shardSteps := make([]int, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo, hi := w*chunk, (w+1)*chunk
		if hi > len(support) {
			hi = len(support)
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				specs[i] = st.ProbeSpec(support[i].Key)
				if err := specs[i].Validate(cells); err != nil {
					specErrs[w] = fmt.Errorf("contention: spec for key %d: %w", support[i].Key, err)
					return
				}
				if len(specs[i]) > shardSteps[w] {
					shardSteps[w] = len(specs[i])
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()
	for w := 0; w < shards; w++ {
		if specErrs[w] != nil {
			return ExactResult{}, specErrs[w]
		}
		if shardSteps[w] > steps {
			steps = shardSteps[w]
		}
	}

	res := ExactResult{Structure: st.Name(), Cells: cells, Steps: steps}
	total := make([]float64, cells)

	// Phase 2: probe steps are independent, so each worker claims steps
	// from a counter and computes that step's full difference array and
	// prefix scan. Completed steps are handed to the ordered merge below.
	type stepOut struct {
		acc  []float64 // prefix-scanned Φ_t(·)
		mass float64
		max  float64
	}
	done := make([]*stepOut, steps)
	var mu sync.Mutex
	cond := sync.NewCond(&mu)
	var next atomic.Int64
	nw := workers
	if nw > steps {
		nw = steps
	}
	for w := 0; w < nw; w++ {
		go func() {
			diff := make([]float64, cells+1)
			for {
				t := int(next.Add(1)) - 1
				if t >= steps {
					return
				}
				for i := range diff {
					diff[i] = 0
				}
				mass := 0.0
				for i, wt := range support {
					if t >= len(specs[i]) {
						continue
					}
					for _, sp := range specs[i][t] {
						pc := sp.PerCell() * wt.P
						diff[sp.Start] += pc
						diff[sp.Start+sp.Count] -= pc
						mass += sp.Mass * wt.P
					}
				}
				out := &stepOut{acc: make([]float64, cells), mass: mass}
				acc := 0.0
				for j := 0; j < cells; j++ {
					acc += diff[j]
					out.acc[j] = acc
					if acc > out.max {
						out.max = acc
					}
				}
				mu.Lock()
				done[t] = out
				cond.Broadcast()
				mu.Unlock()
			}
		}()
	}
	// Ordered merge: accumulate per-step vectors in increasing t, dropping
	// each buffer as soon as it is merged so at most ~workers step vectors
	// are alive at once.
	for t := 0; t < steps; t++ {
		mu.Lock()
		for done[t] == nil {
			cond.Wait()
		}
		out := done[t]
		done[t] = nil
		mu.Unlock()
		for j, v := range out.acc {
			total[j] += v
		}
		if out.max > res.MaxStep {
			res.MaxStep = out.max
		}
		res.StepMass = append(res.StepMass, out.mass)
		res.Probes += out.mass
	}
	for _, v := range total {
		if v > res.MaxTotal {
			res.MaxTotal = v
		}
	}
	return res, nil
}

// exactSerial is the single-worker reference path: no goroutines, no
// synchronization, one reused difference array. It performs the same
// floating-point additions in the same order as the fan-out, which is what
// lets ExactWorkers route a one-core run here without changing a bit of the
// result.
func exactSerial(st Structure, support []dist.Weighted) (ExactResult, error) {
	cells := st.Table().Size()
	specs := make([]cellprobe.ProbeSpec, len(support))
	steps := 0
	for i := range support {
		specs[i] = st.ProbeSpec(support[i].Key)
		if err := specs[i].Validate(cells); err != nil {
			return ExactResult{}, fmt.Errorf("contention: spec for key %d: %w", support[i].Key, err)
		}
		if len(specs[i]) > steps {
			steps = len(specs[i])
		}
	}

	res := ExactResult{Structure: st.Name(), Cells: cells, Steps: steps}
	total := make([]float64, cells)
	diff := make([]float64, cells+1)
	for t := 0; t < steps; t++ {
		for i := range diff {
			diff[i] = 0
		}
		mass := 0.0
		for i, wt := range support {
			if t >= len(specs[i]) {
				continue
			}
			for _, sp := range specs[i][t] {
				pc := sp.PerCell() * wt.P
				diff[sp.Start] += pc
				diff[sp.Start+sp.Count] -= pc
				mass += sp.Mass * wt.P
			}
		}
		acc, stepMax := 0.0, 0.0
		for j := 0; j < cells; j++ {
			acc += diff[j]
			total[j] += acc
			if acc > stepMax {
				stepMax = acc
			}
		}
		if stepMax > res.MaxStep {
			res.MaxStep = stepMax
		}
		res.StepMass = append(res.StepMass, mass)
		res.Probes += mass
	}
	for _, v := range total {
		if v > res.MaxTotal {
			res.MaxTotal = v
		}
	}
	return res, nil
}

// Profile returns the per-cell total contention vector Φ(j) under the given
// support — the raw data behind the F1 load-profile figure.
func Profile(st Structure, support []dist.Weighted) ([]float64, error) {
	cells := st.Table().Size()
	total := make([]float64, cells)
	for _, w := range support {
		spec := st.ProbeSpec(w.Key)
		if err := spec.Validate(cells); err != nil {
			return nil, fmt.Errorf("contention: spec for key %d: %w", w.Key, err)
		}
		for _, step := range spec {
			for _, sp := range step {
				pc := sp.PerCell() * w.P
				for j := sp.Start; j < sp.Start+sp.Count; j++ {
					total[j] += pc
				}
			}
		}
	}
	return total, nil
}

// SortedDescending returns a copy of profile sorted from hottest to coldest.
func SortedDescending(profile []float64) []float64 {
	out := append([]float64(nil), profile...)
	sort.Sort(sort.Reverse(sort.Float64Slice(out)))
	return out
}

// Quantiles picks the values at the given fractions (0 = hottest cell) of a
// descending-sorted profile.
func Quantiles(sorted []float64, fracs []float64) []float64 {
	out := make([]float64, len(fracs))
	for i, f := range fracs {
		idx := int(f * float64(len(sorted)-1))
		if idx < 0 {
			idx = 0
		}
		if idx >= len(sorted) {
			idx = len(sorted) - 1
		}
		out[i] = sorted[idx]
	}
	return out
}

// Flatness summarizes how evenly a per-cell contention profile spreads.
type Flatness struct {
	// Gini is the Gini coefficient of the profile: 0 = perfectly flat,
	// → 1 = all mass on one cell.
	Gini float64
	// NormalizedEntropy is H(profile)/log(cells): 1 = perfectly flat.
	NormalizedEntropy float64
	// MaxOverMean is the peak-to-average ratio (1 = flat).
	MaxOverMean float64
}

// FlatnessOf computes flatness statistics for a contention profile.
// Zero-mass profiles return the flat extreme.
func FlatnessOf(profile []float64) Flatness {
	n := len(profile)
	if n == 0 {
		return Flatness{NormalizedEntropy: 1, MaxOverMean: 1}
	}
	total, maxV := 0.0, 0.0
	for _, v := range profile {
		total += v
		if v > maxV {
			maxV = v
		}
	}
	if total == 0 {
		return Flatness{NormalizedEntropy: 1, MaxOverMean: 1}
	}
	mean := total / float64(n)

	sorted := append([]float64(nil), profile...)
	sort.Float64s(sorted)
	// Gini = (2·Σ i·x_(i) / (n·Σx)) − (n+1)/n with 1-based ranks.
	weighted := 0.0
	for i, v := range sorted {
		weighted += float64(i+1) * v
	}
	gini := 2*weighted/(float64(n)*total) - float64(n+1)/float64(n)

	entropy := 0.0
	for _, v := range profile {
		if v > 0 {
			p := v / total
			entropy -= p * math.Log(p)
		}
	}
	norm := 1.0
	if n > 1 {
		norm = entropy / math.Log(float64(n))
	}
	return Flatness{Gini: gini, NormalizedEntropy: norm, MaxOverMean: maxV / mean}
}

// MonteCarloResult summarizes recorded-probe contention estimation.
type MonteCarloResult struct {
	Structure string
	Queries   int
	Cells     int
	MaxStep   float64 // empirical max_t,j Φ̂_t(j)
	MaxTotal  float64 // empirical max_j Φ̂(j)
	Probes    float64 // mean probes per query
	Positives int     // queries answered true
}

// RatioStep is the empirical per-step contention ratio to optimal.
func (r MonteCarloResult) RatioStep() float64 { return r.MaxStep * float64(r.Cells) }

// MonteCarlo executes queries sampled from q against st with full probe
// recording and returns the empirical contention.
func MonteCarlo(st Structure, q dist.Dist, queries int, r *rng.RNG) (MonteCarloResult, error) {
	tab := st.Table()
	rec := cellprobe.NewRecorder(tab.Size())
	tab.Attach(rec)
	defer tab.Detach()
	positives := 0
	for i := 0; i < queries; i++ {
		ok, err := st.Contains(q.Sample(r), r)
		if err != nil {
			return MonteCarloResult{}, fmt.Errorf("contention: query %d on %s: %w", i, st.Name(), err)
		}
		if ok {
			positives++
		}
		rec.EndQuery()
	}
	return MonteCarloResult{
		Structure: st.Name(),
		Queries:   queries,
		Cells:     tab.Size(),
		MaxStep:   rec.MaxStepContention(),
		MaxTotal:  rec.MaxTotalContention(),
		Probes:    rec.ProbesPerQuery(),
		Positives: positives,
	}, nil
}
