package contention

import (
	"math"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cellprobe"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/hash"
	"repro/internal/rng"
)

func distinctKeys(r *rng.RNG, n int) []uint64 {
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(hash.MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func allStructures(t testing.TB, keys []uint64, seed uint64) []Structure {
	t.Helper()
	lc, err := core.Build(keys, core.Params{}, seed)
	if err != nil {
		t.Fatal(err)
	}
	fks, err := baseline.BuildFKS(keys, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	dm, err := baseline.BuildDM(keys, seed)
	if err != nil {
		t.Fatal(err)
	}
	ck, err := baseline.BuildCuckoo(keys, true, seed)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := baseline.BuildBinarySearch(keys, seed)
	if err != nil {
		t.Fatal(err)
	}
	return []Structure{lc, fks, dm, ck, bs}
}

// TestExactStepMassSumsToProbeProbability: for every structure under uniform
// positive queries, each step's total mass is in [0, 1] and Σ_j Φ_t(j) over
// cells equals the step mass (conservation, Definition 1's Σ_j Φ_t(j) = 1
// for unconditional steps).
func TestExactConservation(t *testing.T) {
	r := rng.New(1)
	keys := distinctKeys(r, 500)
	support := dist.NewUniformSet(keys, "").Support()
	for _, st := range allStructures(t, keys, 2) {
		res, err := Exact(st, support)
		if err != nil {
			t.Fatalf("%s: %v", st.Name(), err)
		}
		for step, m := range res.StepMass {
			if m < -1e-9 || m > 1+1e-9 {
				t.Errorf("%s: step %d mass %v outside [0,1]", st.Name(), step, m)
			}
		}
		// First step always executes for every structure.
		if math.Abs(res.StepMass[0]-1) > 1e-9 {
			t.Errorf("%s: first step mass %v, want 1", st.Name(), res.StepMass[0])
		}
		if res.Probes <= 0 || res.Probes > float64(st.MaxProbes())+1e-9 {
			t.Errorf("%s: probes %v outside (0, %d]", st.Name(), res.Probes, st.MaxProbes())
		}
		if res.MaxStep <= 0 || res.MaxStep > 1+1e-9 {
			t.Errorf("%s: MaxStep %v", st.Name(), res.MaxStep)
		}
		if res.MaxTotal+1e-12 < res.MaxStep {
			t.Errorf("%s: MaxTotal %v < MaxStep %v", st.Name(), res.MaxTotal, res.MaxStep)
		}
	}
}

// TestExactMatchesMonteCarlo compares analytic and empirical contention on a
// small instance where Monte-Carlo estimates are tight.
func TestExactMatchesMonteCarlo(t *testing.T) {
	r := rng.New(3)
	keys := distinctKeys(r, 60)
	q := dist.NewUniformSet(keys, "")
	for _, st := range allStructures(t, keys, 4) {
		ex, err := Exact(st, q.Support())
		if err != nil {
			t.Fatal(err)
		}
		mc, err := MonteCarlo(st, q, 60000, rng.New(5))
		if err != nil {
			t.Fatal(err)
		}
		if mc.Positives != mc.Queries {
			t.Errorf("%s: %d/%d positive answers for positive queries", st.Name(), mc.Positives, mc.Queries)
		}
		if math.Abs(ex.Probes-mc.Probes) > 0.05 {
			t.Errorf("%s: probes exact %v vs mc %v", st.Name(), ex.Probes, mc.Probes)
		}
		// Empirical max contention concentrates around the exact value;
		// allow generous sampling slack.
		if mc.MaxStep < 0.5*ex.MaxStep || mc.MaxStep > 2*ex.MaxStep+0.01 {
			t.Errorf("%s: MaxStep exact %v vs mc %v", st.Name(), ex.MaxStep, mc.MaxStep)
		}
	}
}

// TestTheorem3Ordering is the headline comparison: under uniform positive
// queries the low-contention dictionary's step-contention ratio is a small
// constant while binary search is at the trivial maximum and plain-indexed
// structures sit in between.
func TestTheorem3Ordering(t *testing.T) {
	r := rng.New(6)
	keys := distinctKeys(r, 2048)
	support := dist.NewUniformSet(keys, "").Support()
	sts := allStructures(t, keys, 7)
	ratio := map[string]float64{}
	for _, st := range sts {
		res, err := Exact(st, support)
		if err != nil {
			t.Fatal(err)
		}
		ratio[st.Name()] = res.RatioStep()
		t.Logf("%-10s ratio %.1f (probes %.2f)", st.Name(), res.RatioStep(), res.Probes)
	}
	if ratio["lcds"] > 64 {
		t.Errorf("lcds ratio %.1f not O(1)", ratio["lcds"])
	}
	// Binary search root: contention 1, ratio = cells = n.
	if ratio["bsearch"] < float64(len(keys))-1 {
		t.Errorf("bsearch ratio %.1f, want ≈ n", ratio["bsearch"])
	}
	for _, name := range []string{"fks+rep", "dm", "cuckoo+rep"} {
		if ratio[name] <= ratio["lcds"] {
			t.Errorf("%s ratio %.1f not above lcds %.1f at n=2048", name, ratio[name], ratio["lcds"])
		}
		if ratio[name] >= ratio["bsearch"] {
			t.Errorf("%s ratio %.1f not below bsearch", name, ratio[name])
		}
	}
}

// TestNegativeQueriesAlsoFlat exercises Lemma 10: uniform negative queries
// keep the lcds contention ratio constant too.
func TestNegativeQueriesAlsoFlat(t *testing.T) {
	r := rng.New(8)
	keys := distinctKeys(r, 1024)
	lc, err := core.Build(keys, core.Params{}, 9)
	if err != nil {
		t.Fatal(err)
	}
	neg := dist.NewUniformComplement(hash.MaxKey, keys)
	// The negative distribution's support is the whole universe, so exact
	// analysis over a sampled support would inflate the point-mass data
	// probes by sampling multiplicity; a large Monte-Carlo run estimates
	// the true Φ directly.
	mc, err := MonteCarlo(lc, neg, 400000, rng.New(10))
	if err != nil {
		t.Fatal(err)
	}
	if mc.Positives != 0 {
		t.Errorf("%d positives among negative queries", mc.Positives)
	}
	if ratio := mc.RatioStep(); ratio > 64 {
		t.Errorf("uniform-negative ratio %.1f not O(1)", ratio)
	}
}

// TestPointMassBreaksBaselines: under a point-mass distribution every
// deterministic probe has contention 1 (ratio = cells); the lcds data probe
// is also deterministic per key, so its last steps degrade too — the paper's
// motivation for the §3 lower bound.
func TestPointMassBreaksBaselines(t *testing.T) {
	r := rng.New(11)
	keys := distinctKeys(r, 256)
	q := dist.PointMass{Key: keys[0]}
	for _, st := range allStructures(t, keys, 12) {
		res, err := Exact(st, q.Support())
		if err != nil {
			t.Fatal(err)
		}
		if res.MaxStep < 1-1e-9 {
			t.Errorf("%s: point-mass max step contention %v, want 1", st.Name(), res.MaxStep)
		}
	}
}

func TestProfileMatchesExact(t *testing.T) {
	r := rng.New(13)
	keys := distinctKeys(r, 300)
	support := dist.NewUniformSet(keys, "").Support()
	lc, err := core.Build(keys, core.Params{}, 14)
	if err != nil {
		t.Fatal(err)
	}
	prof, err := Profile(lc, support)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Exact(lc, support)
	if err != nil {
		t.Fatal(err)
	}
	maxProf := 0.0
	sum := 0.0
	for _, v := range prof {
		sum += v
		if v > maxProf {
			maxProf = v
		}
	}
	if math.Abs(maxProf-res.MaxTotal) > 1e-9 {
		t.Errorf("profile max %v vs exact MaxTotal %v", maxProf, res.MaxTotal)
	}
	if math.Abs(sum-res.Probes) > 1e-6 {
		t.Errorf("profile sum %v vs expected probes %v", sum, res.Probes)
	}
}

func TestSortedDescendingAndQuantiles(t *testing.T) {
	prof := []float64{0.1, 0.5, 0.3, 0.2}
	sorted := SortedDescending(prof)
	want := []float64{0.5, 0.3, 0.2, 0.1}
	for i := range want {
		if sorted[i] != want[i] {
			t.Fatalf("sorted = %v", sorted)
		}
	}
	if prof[0] != 0.1 {
		t.Error("SortedDescending mutated input")
	}
	qs := Quantiles(sorted, []float64{0, 0.5, 1})
	if qs[0] != 0.5 || qs[2] != 0.1 {
		t.Errorf("quantiles = %v", qs)
	}
}

func TestFlatnessExtremes(t *testing.T) {
	flat := FlatnessOf([]float64{1, 1, 1, 1})
	if math.Abs(flat.Gini) > 1e-12 || math.Abs(flat.NormalizedEntropy-1) > 1e-12 || flat.MaxOverMean != 1 {
		t.Errorf("flat profile: %+v", flat)
	}
	spike := FlatnessOf([]float64{0, 0, 0, 8})
	if spike.Gini < 0.74 || spike.NormalizedEntropy > 1e-12 || spike.MaxOverMean != 4 {
		t.Errorf("spike profile: %+v", spike)
	}
	if FlatnessOf(nil).MaxOverMean != 1 {
		t.Error("empty profile not flat extreme")
	}
	if FlatnessOf([]float64{0, 0}).MaxOverMean != 1 {
		t.Error("zero profile not flat extreme")
	}
}

// TestFlatnessOrdersStructures: the lcds profile must be flatter than
// binary search's by every metric.
func TestFlatnessOrdersStructures(t *testing.T) {
	r := rng.New(21)
	keys := distinctKeys(r, 512)
	lc, err := core.Build(keys, core.Params{}, 22)
	if err != nil {
		t.Fatal(err)
	}
	bs, err := baseline.BuildBinarySearch(keys, 22)
	if err != nil {
		t.Fatal(err)
	}
	support := dist.NewUniformSet(keys, "").Support()
	profLC, err := Profile(lc, support)
	if err != nil {
		t.Fatal(err)
	}
	profBS, err := Profile(bs, support)
	if err != nil {
		t.Fatal(err)
	}
	fLC, fBS := FlatnessOf(profLC), FlatnessOf(profBS)
	if fLC.Gini >= fBS.Gini {
		t.Errorf("lcds Gini %v not below bsearch %v", fLC.Gini, fBS.Gini)
	}
	if fLC.NormalizedEntropy <= fBS.NormalizedEntropy {
		t.Errorf("lcds entropy %v not above bsearch %v", fLC.NormalizedEntropy, fBS.NormalizedEntropy)
	}
	if fLC.MaxOverMean >= fBS.MaxOverMean {
		t.Errorf("lcds peak/mean %v not below bsearch %v", fLC.MaxOverMean, fBS.MaxOverMean)
	}
}

func TestMonteCarloErrorsSurface(t *testing.T) {
	r := rng.New(15)
	keys := distinctKeys(r, 64)
	lc, err := core.Build(keys, core.Params{}, 16)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the z row so Contains fails.
	for j := 0; j < lc.Report().S; j++ {
		lc.Table().Set(2*4, j, cellprobe.Cell{Lo: ^uint64(0)})
	}
	if _, err := MonteCarlo(lc, dist.NewUniformSet(keys, ""), 100, rng.New(17)); err == nil {
		t.Error("corrupt table did not surface through MonteCarlo")
	}
}

// TestExactWorkersBitIdentical: the parallel analyzer's contract is that
// worker count changes wall clock only — every float in the result must be
// bit-identical to the serial (workers = 1) path, for the dictionary and
// for a baseline with a different spec shape.
func TestExactWorkersBitIdentical(t *testing.T) {
	keys := distinctKeys(rng.New(41), 1200)
	for _, st := range allStructures(t, keys, 4) {
		support := dist.NewUniformSet(keys, "").Support()
		serial, err := ExactWorkers(st, support, 1)
		if err != nil {
			t.Fatalf("%s serial: %v", st.Name(), err)
		}
		for _, workers := range []int{2, 3, 4, 7, 16} {
			par, err := ExactWorkers(st, support, workers)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", st.Name(), workers, err)
			}
			if par.MaxStep != serial.MaxStep || par.MaxTotal != serial.MaxTotal || par.Probes != serial.Probes {
				t.Fatalf("%s workers=%d diverged: maxStep %v vs %v, maxTotal %v vs %v, probes %v vs %v",
					st.Name(), workers, par.MaxStep, serial.MaxStep,
					par.MaxTotal, serial.MaxTotal, par.Probes, serial.Probes)
			}
			if len(par.StepMass) != len(serial.StepMass) {
				t.Fatalf("%s workers=%d: %d steps vs %d", st.Name(), workers, len(par.StepMass), len(serial.StepMass))
			}
			for i := range par.StepMass {
				if par.StepMass[i] != serial.StepMass[i] {
					t.Fatalf("%s workers=%d: step %d mass %v vs %v",
						st.Name(), workers, i, par.StepMass[i], serial.StepMass[i])
				}
			}
		}
	}
}

// TestExactWorkersErrorDeterministic: an invalid spec must surface the same
// error regardless of worker count (the lowest-indexed bad key wins).
func TestExactWorkersErrorDeterministic(t *testing.T) {
	keys := distinctKeys(rng.New(42), 300)
	st, err := core.Build(keys, core.Params{}, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Wrap the structure so Validate sees a table half the real size:
	// every spec with a span in the upper half becomes invalid, and the
	// first such key in support order must win whatever the worker count.
	bad := shrunkTable{Structure: st}
	support := dist.NewUniformSet(keys, "").Support()
	serialErr := func() string {
		_, err := ExactWorkers(bad, support, 1)
		if err == nil {
			t.Fatal("shrunk table accepted")
		}
		return err.Error()
	}()
	for _, workers := range []int{2, 5, 9} {
		_, err := ExactWorkers(bad, support, workers)
		if err == nil {
			t.Fatalf("workers=%d: shrunk table accepted", workers)
		}
		if err.Error() != serialErr {
			t.Fatalf("workers=%d error %q, want %q", workers, err.Error(), serialErr)
		}
	}
}

// shrunkTable reports a table half the real size so that late probe spans
// fail validation.
type shrunkTable struct{ Structure }

func (s shrunkTable) Table() *cellprobe.Table {
	real := s.Structure.Table()
	return cellprobe.New(1, real.Size()/2)
}
