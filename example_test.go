package lcds_test

import (
	"bytes"
	"fmt"
	"log"

	lcds "repro"
)

// Example builds a dictionary and answers membership queries.
func Example() {
	d, err := lcds.New([]uint64{3, 14, 159, 2653})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Contains(14), d.Contains(15))
	// Output: true false
}

// ExampleNew_options shows the construction knobs: more space (β) buys a
// lower contention constant; the seed makes everything reproducible.
func ExampleNew_options() {
	keys := []uint64{10, 20, 30, 40, 50}
	d, err := lcds.New(keys,
		lcds.WithSeed(7),
		lcds.WithSpace(8),        // s = 8n buckets
		lcds.WithIndependence(4), // d-wise independent hashing
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Len(), d.Contains(30))
	// Output: 5 true
}

// ExampleDict_ContentionSummary inspects the Theorem 3 guarantee: the
// hottest cell's probe probability as a multiple of the optimal 1/s.
func ExampleDict_ContentionSummary() {
	keys := make([]uint64, 1024)
	for i := range keys {
		keys[i] = uint64(i)
	}
	d, err := lcds.New(keys, lcds.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	c, err := d.ContentionSummary(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(c.RatioStep < 64, c.Probes <= float64(d.MaxProbes()))
	// Output: true true
}

// ExampleDict_WriteTo round-trips a dictionary through its compact
// serialization.
func ExampleDict_WriteTo() {
	d, err := lcds.New([]uint64{1, 2, 3}, lcds.WithSeed(9))
	if err != nil {
		log.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		log.Fatal(err)
	}
	loaded, err := lcds.Read(&buf)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(loaded.Contains(2), loaded.Contains(4))
	// Output: true false
}

// ExampleNewFromStrings answers membership over strings via 61-bit
// fingerprints.
func ExampleNewFromStrings() {
	d, err := lcds.NewFromStrings([]string{"alice", "bob", "carol"})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(d.Contains("bob"), d.Contains("mallory"))
	// Output: true false
}

// ExampleNewDynamic mutates a dictionary; rebuilds happen automatically.
func ExampleNewDynamic() {
	d, err := lcds.NewDynamic([]uint64{1, 2, 3}, 0.5)
	if err != nil {
		log.Fatal(err)
	}
	if _, err := d.Insert(4); err != nil {
		log.Fatal(err)
	}
	if _, err := d.Delete(1); err != nil {
		log.Fatal(err)
	}
	in4, _ := d.Contains(4)
	in1, _ := d.Contains(1)
	fmt.Println(d.Len(), in4, in1)
	// Output: 3 true false
}
