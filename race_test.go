package lcds

import (
	"sync"
	"testing"
)

// Race tests for the public facade: run with `go test -race`. The static
// Dict shares one sharded query source across all callers; the dynamic
// dictionary additionally publishes epoch snapshots that readers traverse
// while writers mutate and rebuild. The heavy variants shrink under
// `go test -short`.

// TestConcurrentStaticContains hammers Dict.Contains from many goroutines.
// The static dictionary is immutable after construction, so the only shared
// mutable state on this path is the query source's shard cells.
func TestConcurrentStaticContains(t *testing.T) {
	goroutines, ops := 8, 20000
	if testing.Short() {
		goroutines, ops = 4, 2000
	}
	keys := testKeys(4096, 51)
	members := make(map[uint64]bool, 2048)
	for _, k := range keys[:2048] {
		members[k] = true
	}
	d, err := New(keys[:2048], WithSeed(52))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				k := keys[(g*ops+i)%len(keys)]
				if got := d.Contains(k); got != members[k] {
					t.Errorf("Contains(%d) = %v, want %v", k, got, members[k])
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentBatchContains hammers the batch query paths: many goroutines
// call ContainsBatch on one static Dict (pooled scratch reuse under the race
// detector) while the dynamic variant below also sees rebuilds in flight.
func TestConcurrentBatchContains(t *testing.T) {
	goroutines, rounds := 8, 40
	if testing.Short() {
		goroutines, rounds = 4, 8
	}
	keys := testKeys(4096, 71)
	d, err := New(keys[:2048], WithSeed(72))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]bool, len(keys))
			for i := 0; i < rounds; i++ {
				if err := d.ContainsBatch(keys, out); err != nil {
					t.Error(err)
					return
				}
				for j := range keys {
					if want := j < 2048; out[j] != want {
						t.Errorf("goroutine %d: batch[%d] = %v, want %v", g, j, out[j], want)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentDynamicBatch runs ContainsBatch readers against a churning
// DynamicDict so the epoch-snapshot batch path races with writers and
// background rebuilds.
func TestConcurrentDynamicBatch(t *testing.T) {
	readers, rounds, writerOps := 4, 30, 1500
	if testing.Short() {
		readers, rounds, writerOps = 2, 6, 300
	}
	keys := testKeys(3000, 81)
	stable, volatile := keys[:1500], keys[1500:]
	d, err := NewDynamic(stable, 0.5, WithSeed(82))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := make([]bool, len(stable))
			for i := 0; i < rounds; i++ {
				if err := d.ContainsBatch(stable, out); err != nil {
					t.Error(err)
					return
				}
				for j, ok := range out {
					if !ok {
						t.Errorf("stable key %d reported absent by batch", stable[j])
						return
					}
				}
			}
		}()
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < writerOps; i++ {
			k := volatile[i%len(volatile)]
			var err error
			if i%2 == 0 {
				_, err = d.Insert(k)
			} else {
				_, err = d.Delete(k)
			}
			if err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}

// TestConcurrentDynamicHammer mixes Contains, Insert, Delete and Len on one
// DynamicDict. Stable keys are never touched by writers, so readers can
// check exact answers; volatile keys churn to keep rebuilds in flight.
func TestConcurrentDynamicHammer(t *testing.T) {
	readers, writers, readerOps, writerOps := 6, 2, 8000, 2500
	if testing.Short() {
		readers, writers, readerOps, writerOps = 2, 1, 1000, 300
	}
	keys := testKeys(3000, 61)
	stable, volatile := keys[:1500], keys[1500:]
	d, err := NewDynamic(stable, 0.5, WithSeed(62))
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < readerOps; i++ {
				k := stable[(g*readerOps+i)%len(stable)]
				ok, err := d.Contains(k)
				if err != nil {
					t.Error(err)
					return
				}
				if !ok {
					t.Errorf("stable key %d reported absent", k)
					return
				}
				if n := d.Len(); n < len(stable) {
					t.Errorf("Len() = %d below stable floor %d", n, len(stable))
					return
				}
			}
		}(g)
	}
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < writerOps; i++ {
				k := volatile[(g*writerOps+i)%len(volatile)]
				var err error
				if i%2 == 0 {
					_, err = d.Insert(k)
				} else {
					_, err = d.Delete(k)
				}
				if err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	d.Quiesce()
	for _, k := range stable {
		ok, err := d.Contains(k)
		if err != nil || !ok {
			t.Fatalf("stable key %d missing after hammer (err %v)", k, err)
		}
	}
}
