package lcds

import (
	"bytes"
	"sync"
	"testing"

	"repro/internal/rng"
)

func testKeys(n int, seed uint64) []uint64 {
	r := rng.New(seed)
	seen := make(map[uint64]bool, n)
	keys := make([]uint64, 0, n)
	for len(keys) < n {
		k := r.Uint64n(MaxKey)
		if !seen[k] {
			seen[k] = true
			keys = append(keys, k)
		}
	}
	return keys
}

func TestNewAndContains(t *testing.T) {
	keys := testKeys(1000, 1)
	d, err := New(keys, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 1000 {
		t.Errorf("Len = %d", d.Len())
	}
	inSet := make(map[uint64]bool, len(keys))
	for _, k := range keys {
		inSet[k] = true
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	r := rng.New(2)
	for i := 0; i < 2000; i++ {
		x := r.Uint64n(MaxKey)
		if !inSet[x] && d.Contains(x) {
			t.Fatalf("phantom key %d", x)
		}
	}
}

func TestOptionsValidation(t *testing.T) {
	keys := testKeys(10, 3)
	if _, err := New(keys, WithSpace(1)); err == nil {
		t.Error("WithSpace(1) accepted")
	}
	if _, err := New(keys, WithIndependence(2)); err == nil {
		t.Error("WithIndependence(2) accepted")
	}
	if _, err := New(keys, WithSlack(0.5)); err == nil {
		t.Error("WithSlack(0.5) accepted")
	}
	if _, err := New(keys, WithSpace(8), WithIndependence(4), WithSlack(6), WithSeed(9)); err != nil {
		t.Errorf("valid options rejected: %v", err)
	}
}

func TestRejectsBadKeys(t *testing.T) {
	if _, err := New([]uint64{7, 7}); err == nil {
		t.Error("duplicates accepted")
	}
	if _, err := New([]uint64{MaxKey}); err == nil {
		t.Error("out-of-universe key accepted")
	}
}

func TestEmptyDictionary(t *testing.T) {
	d, err := New(nil)
	if err != nil {
		t.Fatal(err)
	}
	if d.Len() != 0 {
		t.Errorf("Len = %d", d.Len())
	}
	if d.Contains(12345) {
		t.Error("empty dictionary contains a key")
	}
	if _, err := d.ContentionSummary(nil); err == nil {
		t.Error("empty contention summary did not fail")
	}
}

func TestConcurrentQueries(t *testing.T) {
	keys := testKeys(2000, 4)
	d, err := New(keys)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rng.New(uint64(g))
			for i := 0; i < 5000; i++ {
				k := keys[r.Intn(len(keys))]
				ok, err := d.Lookup(k)
				if err != nil {
					errs <- err
					return
				}
				if !ok {
					errs <- nil
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatalf("concurrent query failed: %v", err)
	}
}

func TestStats(t *testing.T) {
	keys := testKeys(1500, 5)
	d, err := New(keys, WithSeed(6))
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.N != 1500 {
		t.Errorf("Stats.N = %d", s.N)
	}
	if s.Cells != d.SpaceCells() {
		t.Errorf("Stats.Cells = %d, SpaceCells = %d", s.Cells, d.SpaceCells())
	}
	if s.Buckets < 2*s.N {
		t.Errorf("buckets %d below 2n", s.Buckets)
	}
	if s.Rows < 10 || s.Rows > 20 {
		t.Errorf("rows = %d", s.Rows)
	}
	if s.HashTries < 1 {
		t.Errorf("hash tries = %d", s.HashTries)
	}
	if d.MaxProbes() < 10 || d.MaxProbes() > 20 {
		t.Errorf("MaxProbes = %d", d.MaxProbes())
	}
}

func TestContentionSummary(t *testing.T) {
	keys := testKeys(2048, 7)
	d, err := New(keys, WithSeed(8))
	if err != nil {
		t.Fatal(err)
	}
	c, err := d.ContentionSummary(keys)
	if err != nil {
		t.Fatal(err)
	}
	if c.RatioStep <= 0 || c.RatioStep > 64 {
		t.Errorf("RatioStep = %v, want small constant", c.RatioStep)
	}
	if c.RatioTotal < c.RatioStep {
		t.Errorf("RatioTotal %v < RatioStep %v", c.RatioTotal, c.RatioStep)
	}
	if c.Probes <= 0 || c.Probes > float64(d.MaxProbes()) {
		t.Errorf("Probes = %v", c.Probes)
	}
}

func TestWithCompact(t *testing.T) {
	keys := testKeys(2000, 30)
	dense, err := New(keys, WithSeed(31))
	if err != nil {
		t.Fatal(err)
	}
	compact, err := New(keys, WithSeed(31), WithCompact())
	if err != nil {
		t.Fatal(err)
	}
	if dense.SpaceCells() != compact.SpaceCells() {
		t.Errorf("model space differs: %d vs %d", dense.SpaceCells(), compact.SpaceCells())
	}
	for _, k := range keys[:300] {
		if !compact.Contains(k) {
			t.Fatalf("compact dictionary lost key %d", k)
		}
	}
	cd, err := dense.ContentionSummary(keys)
	if err != nil {
		t.Fatal(err)
	}
	cc, err := compact.ContentionSummary(keys)
	if err != nil {
		t.Fatal(err)
	}
	if cd != cc {
		t.Errorf("contention differs between backings: %+v vs %+v", cd, cc)
	}
}

func TestSerializationFacadeRoundTrip(t *testing.T) {
	keys := testKeys(800, 40)
	d, err := New(keys, WithSeed(41))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Read(&buf, WithSeed(42))
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range keys {
		if !loaded.Contains(k) {
			t.Fatalf("loaded dictionary lost key %d", k)
		}
	}
	if loaded.Len() != 800 {
		t.Errorf("Len = %d", loaded.Len())
	}
}

func TestExplainFacade(t *testing.T) {
	keys := testKeys(100, 50)
	d, err := New(keys, WithSeed(51))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	ok, err := d.Explain(keys[0], &buf)
	if err != nil || !ok {
		t.Fatalf("Explain: ok=%v err=%v", ok, err)
	}
	if buf.Len() == 0 {
		t.Error("Explain wrote nothing")
	}
}

func TestDeterministicWithSeed(t *testing.T) {
	keys := testKeys(300, 9)
	a, err := New(keys, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(keys, WithSeed(11))
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats() != b.Stats() {
		t.Errorf("same seed produced different stats")
	}
}
