//go:build race

package lcds

// raceEnabled reports whether the race detector instruments this build.
// sync.Pool deliberately drops items at random under the detector, so the
// pooled facade paths cannot be allocation-free there.
const raceEnabled = true
