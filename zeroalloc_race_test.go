//go:build race

package lcds

import "testing"

// assertPooledPathsZeroAlloc (race build): sync.Pool drops Puts at random
// under the race detector, so the pooled facade paths allocate there by
// design and counting would be meaningless. Exercise the same paths for
// correctness instead — the non-pooled assertion in TestContainsZeroAlloc
// keeps the allocation guarantee itself covered on race CI.
func assertPooledPathsZeroAlloc(t *testing.T, d *Dict, keys []uint64) {
	for _, k := range keys[:64] {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	batch := keys[:256]
	out := make([]bool, len(batch))
	if err := d.ContainsBatch(batch, out); err != nil {
		t.Fatal(err)
	}
	for i := range batch {
		if !out[i] {
			t.Fatalf("batch lost key %d", batch[i])
		}
	}
}
