package lcds

import (
	"math"
	"sync"
	"testing"
	"time"

	"repro/internal/dist"
	"repro/internal/workload"
)

// TestAdaptiveTelemetryFacade drives a dictionary built with controller-tuned
// sampling: the first tick under load must raise k off its floor, further
// ticks under the same load must hold it steady (the hysteresis deadband),
// and the pre-scaled counters must keep the probe estimate unbiased across
// the retunes.
func TestAdaptiveTelemetryFacade(t *testing.T) {
	keys := testKeys(2048, 41)
	d, err := New(keys, WithSeed(41), WithTelemetry(TelemetryConfig{
		Adaptive: &TelemetryAdaptiveConfig{TargetProbesPerSec: 1000},
	}))
	if err != nil {
		t.Fatal(err)
	}
	tel := d.Telemetry()
	if !tel.Adaptive() || tel.Sample() != 1 {
		t.Fatalf("initial adaptive state: adaptive=%v k=%d", tel.Adaptive(), tel.Sample())
	}
	out := make([]bool, len(keys))
	drivePass := func() {
		if err := d.ContainsBatch(keys, out); err != nil {
			t.Fatal(err)
		}
	}
	drivePass()
	k1 := tel.AdaptTick(time.Second)
	if k1 <= 1 {
		t.Fatalf("k = %d after a hot tick, want > 1", k1)
	}
	// Same offered load per tick: the controller must settle, not oscillate.
	for tick := 0; tick < 3; tick++ {
		drivePass()
		if k := tel.AdaptTick(time.Second); k != k1 {
			t.Fatalf("tick %d: k = %d, want steady %d", tick, k, k1)
		}
	}
	snap := tel.Snapshot()
	if !snap.Adaptive || snap.Sample != k1 {
		t.Fatalf("snapshot adaptive=%v sample=%d, want true/%d", snap.Adaptive, snap.Sample, k1)
	}
	// Unbiasedness across the k=1 → k1 retune: the live probes-per-query
	// estimate still matches the exact analysis.
	drift, err := d.TelemetryCompareExact(keys)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(drift.ProbesRatio-1) > 0.10 {
		t.Fatalf("adaptive probe estimate off by %.1f%%: live %.3f exact %.3f",
			100*math.Abs(drift.ProbesRatio-1), drift.ProbesLive, drift.ProbesExact)
	}
}

// TestTelemetryCompareExactWeighted closes the skewed-drive loop through the
// public facade: a Zipf(1.2) schedule drives the dictionary and the drift is
// computed under the schedule's realized weights, so the live and exact sides
// describe the same distribution and the ratios sit at 1 within sampling
// noise.
func TestTelemetryCompareExactWeighted(t *testing.T) {
	const n, passes = 2048, 32
	keys := testKeys(n, 42)
	d, err := New(keys, WithSeed(42), WithTelemetry(TelemetryConfig{Sample: 1}))
	if err != nil {
		t.Fatal(err)
	}
	drive, err := workload.NewWeightedDrive(dist.NewZipf(keys, 1.2).Support(), passes*n, 42)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < passes*n; i++ {
		if !d.Contains(drive.Next()) {
			t.Fatal("lost key")
		}
	}
	support := make([]WeightedKey, 0, n)
	for _, w := range drive.Realized() {
		support = append(support, WeightedKey{Key: w.Key, P: w.P})
	}
	drift, err := d.TelemetryCompareExactWeighted(support)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(drift.MaxPhiRatio-1) > 0.05 {
		t.Fatalf("skewed maxΦ̂ ratio %.4f outside [0.95, 1.05] (live %.4f exact %.4f)",
			drift.MaxPhiRatio, drift.MaxPhiLive, drift.MaxPhiExact)
	}
	if math.Abs(drift.ProbesRatio-1) > 1e-9 {
		t.Fatalf("skewed probes ratio %v, want exactly 1 (deterministic probe counts)", drift.ProbesRatio)
	}
	// The uniform-weights entry point agrees with the plain-keys one.
	du, err := d.TelemetryCompareExact(keys)
	if err != nil {
		t.Fatal(err)
	}
	dw, err := d.TelemetryCompareExactWeighted(uniformWeights(keys))
	if err != nil {
		t.Fatal(err)
	}
	if du != dw {
		t.Fatalf("uniform drift mismatch: %+v vs %+v", du, dw)
	}
	// A degenerate support is rejected, not analyzed.
	if _, err := d.TelemetryCompareExactWeighted([]WeightedKey{{Key: keys[0], P: 0}}); err == nil {
		t.Fatal("zero-mass support accepted")
	}
}

// TestDynamicCompareExactBufferSteps is the regression test for the dynamic
// step-alignment fix: with an empty update buffer mid-epoch, the always-
// executed buffer probes land at steps past the static snapshot's MaxProbes,
// and the comparison previously diffed them against an exact analysis that
// never modeled them — reporting a spurious step-mass gap of ≈ 1.0 and an
// inflated probes ratio. Bounded to the static range, both signals read
// clean.
func TestDynamicCompareExactBufferSteps(t *testing.T) {
	const n, passes = 1024, 16
	keys := testKeys(n, 43)
	d, err := NewDynamic(keys, 0.25, WithSeed(43), WithTelemetry(TelemetryConfig{Sample: 1}))
	if err != nil {
		t.Fatal(err)
	}
	d.Quiesce()
	for p := 0; p < passes; p++ {
		for _, k := range keys {
			ok, err := d.Contains(k)
			if err != nil || !ok {
				t.Fatalf("lost key %d (%v)", k, err)
			}
		}
	}
	drift, err := d.TelemetryCompareExact(keys)
	if err != nil {
		t.Fatal(err)
	}
	if drift.StepMassMaxDiff > 0.02 {
		t.Fatalf("step-mass gap %.4f with an empty buffer, want ≈ 0 (the spurious-1.0 regression)",
			drift.StepMassMaxDiff)
	}
	if math.Abs(drift.ProbesRatio-1) > 0.05 {
		t.Fatalf("in-range probes ratio %.4f (live %.3f exact %.3f)",
			drift.ProbesRatio, drift.ProbesLive, drift.ProbesExact)
	}
	// The raw snapshot still sees the buffer probes — the comparison, not the
	// counters, is what the fix bounds.
	if snap := d.Telemetry().Snapshot(); snap.ProbesPerQuery <= drift.ProbesLive {
		t.Fatalf("whole-epoch probes/query %.3f not above in-range %.3f — buffer probes missing",
			snap.ProbesPerQuery, drift.ProbesLive)
	}
}

// TestConcurrentAdaptTickDuringBatch races the adaptive controller against
// the parallel batch path: a ticker goroutine retunes k while sharded batch
// queries fan out and record probes through the same telemetry. Run under
// -race this checks the controller's only shared state (the atomic factor
// and the striped recorded counter) is safely published; the query counters
// must still account every query exactly.
func TestConcurrentAdaptTickDuringBatch(t *testing.T) {
	rounds := 40
	if testing.Short() {
		rounds = 8
	}
	keys := testKeys(4096, 44)
	d, err := New(keys, WithSeed(44), WithShards(4), WithTelemetry(TelemetryConfig{
		Adaptive: &TelemetryAdaptiveConfig{TargetProbesPerSec: 5000, MaxSample: 256},
	}))
	if err != nil {
		t.Fatal(err)
	}
	tel := d.Telemetry()
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if k := tel.AdaptTick(10 * time.Millisecond); k < 1 || k > 256 {
					t.Errorf("k = %d outside [1, 256]", k)
					return
				}
			}
		}
	}()
	const workers = 4
	var qwg sync.WaitGroup
	for w := 0; w < workers; w++ {
		qwg.Add(1)
		go func() {
			defer qwg.Done()
			out := make([]bool, len(keys))
			for r := 0; r < rounds; r++ {
				if err := d.ContainsBatch(keys, out); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	qwg.Wait()
	close(stop)
	wg.Wait()
	snap := tel.Snapshot()
	if want := uint64(workers * rounds * len(keys)); snap.Queries != want {
		t.Fatalf("queries = %d, want %d", snap.Queries, want)
	}
	if snap.Probes == 0 || tel.RecordedProbes() == 0 {
		t.Fatalf("no probes recorded under concurrent retuning: %+v", snap)
	}
}

// TestAdaptiveTelemetryZeroAlloc guards the adaptive hot path's allocation
// contract through the build-tag pair in zeroalloc_norace_test.go /
// zeroalloc_race_test.go: the controller branch of ProbeObserved (atomic
// factor load + pre-scaled striped adds) must not allocate.
func TestAdaptiveTelemetryZeroAlloc(t *testing.T) {
	keys := testKeys(4096, 45)
	d, err := New(keys, WithSeed(45), WithTelemetry(TelemetryConfig{
		Adaptive: &TelemetryAdaptiveConfig{TargetProbesPerSec: 1e9},
	}))
	if err != nil {
		t.Fatal(err)
	}
	// Retune once so the measured path runs at a controller-set factor
	// rather than the initial one.
	for _, k := range keys[:256] {
		if !d.Contains(k) {
			t.Fatalf("lost key %d", k)
		}
	}
	d.Telemetry().AdaptTick(time.Millisecond)
	assertPooledPathsZeroAlloc(t, d, keys)
}
