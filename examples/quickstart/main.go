// Quickstart: build a low-contention dictionary, query it, and inspect its
// contention guarantee.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	lcds "repro"
)

func main() {
	// A static key set — say, the IDs of items pinned in a shared cache.
	keys := make([]uint64, 0, 10000)
	for i := uint64(0); i < 10000; i++ {
		keys = append(keys, i*i+7) // any distinct values < lcds.MaxKey
	}

	d, err := lcds.New(keys, lcds.WithSeed(42))
	if err != nil {
		log.Fatal(err)
	}

	// Membership queries. Contains is safe for concurrent use.
	fmt.Println("contains 7?      ", d.Contains(7))    // 0²+7
	fmt.Println("contains 9999?   ", d.Contains(9999)) // not of the form i²+7
	fmt.Println("contains 99994016?", d.Contains(9999*9999+7))

	// What construction did, and what the structure guarantees.
	s := d.Stats()
	fmt.Printf("\nn = %d keys in %d cells (%d rows × %d buckets), built after %d hash draws\n",
		s.N, s.Cells, s.Rows, s.Buckets, s.HashTries)
	fmt.Printf("each query makes ≤ %d cell probes\n", d.MaxProbes())

	c, err := d.ContentionSummary(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nunder uniform queries over the stored keys:\n")
	fmt.Printf("  hottest cell is probed %.1f× the optimal 1/s per step (Theorem 3: O(1))\n", c.RatioStep)
	fmt.Printf("  expected probes per query: %.2f\n", c.Probes)
}
