// Knownq: when the builder knows the query distribution.
//
// The §3 lower bound says a distribution-oblivious query algorithm cannot
// keep contention near-optimal for every distribution — but the paper's
// model (§1.1) lets the CONSTRUCTION know q. This example builds the
// skew-aware dictionary for a Zipf workload and compares its exact
// contention against the oblivious Theorem 3 structure.
//
//	go run ./examples/knownq
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/skew"
)

func main() {
	const n = 4096
	const seed = 42
	keys := experiments.Keys(n, seed)

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "zipf exp\toblivious lcds\tknown-q (R=8)\timprovement\textra space")
	for _, exp := range []float64{0.8, 1.0, 1.2} {
		q := dist.NewZipf(keys, exp)
		support := q.Support()

		plain, err := core.Build(keys, core.Params{}, seed)
		if err != nil {
			log.Fatal(err)
		}
		ex, err := contention.Exact(plain, support)
		if err != nil {
			log.Fatal(err)
		}

		aware, err := skew.Build(support, skew.Params{Replicas: 8}, seed)
		if err != nil {
			log.Fatal(err)
		}
		a, err := aware.Analyze(support)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Fprintf(tw, "%.1f\t%.0f\t%.0f\t%.1f×\t%.0f%%\n",
			exp, ex.RatioStep(), a.RatioStep(), ex.RatioStep()/a.RatioStep(),
			100*(float64(aware.Cells())/float64(plain.Table().Size())-1))
	}
	tw.Flush()

	fmt.Println("\nthe hot keys' deterministic data probes are spread across 8 whole copies;")
	fmt.Println("the query algorithm stays oblivious — only the table encodes the distribution.")
	fmt.Println("improvement is bounded by R: the lower bound's price, paid in space.")
}
