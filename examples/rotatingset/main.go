// Rotatingset: the dynamic extension in a realistic shape — a sliding
// blocklist. A stream of identifiers is admitted and expired continuously;
// the dictionary absorbs updates in its buffer and periodically rebuilds the
// static low-contention structure (the paper's §4 future-work direction).
//
//	go run ./examples/rotatingset
package main

import (
	"fmt"
	"log"

	lcds "repro"
)

func main() {
	const window = 20000 // identifiers kept blocked at any time
	const churn = 60000  // total admissions beyond the initial window

	// Initial window: ids 0..window-1 (any distinct uint64 < lcds.MaxKey).
	initial := make([]uint64, window)
	for i := range initial {
		initial[i] = uint64(i)
	}
	d, err := lcds.NewDynamic(initial, 0.25, lcds.WithSeed(7))
	if err != nil {
		log.Fatal(err)
	}

	// Slide the window: admit id, expire id-window.
	for id := uint64(window); id < window+churn; id++ {
		if _, err := d.Insert(id); err != nil {
			log.Fatal(err)
		}
		if _, err := d.Delete(id - window); err != nil {
			log.Fatal(err)
		}
	}

	fmt.Printf("processed %d updates over a window of %d keys\n", 2*churn, window)
	fmt.Printf("current size: %d (want %d)\n", d.Len(), window)
	fmt.Printf("global rebuilds: %d (amortized O(1/ε) work per update)\n", d.Rebuilds())

	// Spot-check the window boundaries.
	for _, probe := range []struct {
		id   uint64
		want bool
	}{
		{churn - 1, false},            // expired long ago
		{churn, true},                 // oldest still blocked
		{churn + window - 1, true},    // newest
		{churn + window + 100, false}, // never admitted
	} {
		got, err := d.Contains(probe.id)
		if err != nil {
			log.Fatal(err)
		}
		status := "blocked"
		if !got {
			status = "admitted"
		}
		fmt.Printf("  id %-6d -> %s\n", probe.id, status)
		if got != probe.want {
			log.Fatalf("id %d: got %v, want %v", probe.id, got, probe.want)
		}
	}
	fmt.Println("\nreads keep the static low-contention guarantee between rebuilds;")
	fmt.Println("run ./cmd/lcds-bench -exp X1 to measure the update-side contention.")
}
