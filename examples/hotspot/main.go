// Hotspot: the paper's motivating scenario. Many processors query a shared
// read-only index simultaneously; structures with hot cells (binary search's
// root, FKS's bucket headers) serialize on them, while the low-contention
// dictionary spreads its probes and scales.
//
// The example runs the single-port-per-cell memory simulation (the hot-spot
// cost model of Dwork–Herlihy–Waarts) for a sweep of processor counts.
//
//	go run ./examples/hotspot
package main

import (
	"fmt"
	"log"
	"os"
	"text/tabwriter"

	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/memsim"
	"repro/internal/rng"
)

func main() {
	const n = 4096
	const seed = 2010

	keys := experiments.Keys(n, seed)
	structures, err := experiments.ComparisonSet(keys, seed)
	if err != nil {
		log.Fatal(err)
	}
	queries := dist.NewUniformSet(keys, "")

	fmt.Printf("%d processors each issue one membership query (n = %d keys).\n", 256, n)
	fmt.Println("slowdown = cycles to drain all queries / cycles for one query alone")
	fmt.Println()

	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	header := "processors"
	for _, st := range structures {
		header += "\t" + st.Name()
	}
	fmt.Fprintln(tw, header)
	for _, procs := range []int{1, 4, 16, 64, 256} {
		row := fmt.Sprintf("%d", procs)
		for _, st := range structures {
			seqs, err := memsim.Sequences(st, queries, procs, rng.New(seed+uint64(procs)))
			if err != nil {
				log.Fatal(err)
			}
			res := memsim.Run(seqs, memsim.Config{})
			row += fmt.Sprintf("\t%.2f", res.Slowdown())
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	fmt.Println("\nbinary search serializes on its root; the header-indexed hash tables")
	fmt.Println("serialize on their hottest bucket header; the low-contention dictionary")
	fmt.Println("stays near 1.0 because every step probes a uniformly random replica.")
}
