// Monitor quickstart: turn on live contention telemetry with one option,
// read the runtime Φ̂ estimate, and check it against the exact offline
// analysis — the theory-vs-runtime loop of EXPERIMENTS.md §A8 in ~40 lines.
//
// The full HTTP exposition (Prometheus /metrics, /debug/telemetry JSON,
// pprof) is `go run ./cmd/lcds-monitor`; this example uses the same
// telemetry layer directly through the library API.
//
//	go run ./examples/monitor
package main

import (
	"fmt"
	"log"

	"repro/internal/experiments"

	lcds "repro"
)

func main() {
	const n = 4096
	const seed = 2010

	keys := experiments.Keys(n, seed)
	d, err := lcds.New(keys, lcds.WithSeed(seed),
		lcds.WithTelemetry(lcds.TelemetryConfig{
			Sample:     1,  // count every probe (k>1 samples 1-in-k)
			TraceEvery: 64, // keep a full probe trace for 1 in 64 queries
			TopK:       5,  // hottest cells in the snapshot
		}))
	if err != nil {
		log.Fatal(err)
	}

	// Drive the uniform positive distribution round-robin: every key gets
	// the same query count, so the empirical Φ̂ converges to the analysis.
	const passes = 64
	for pass := 0; pass < passes; pass++ {
		for _, k := range keys {
			if !d.Contains(k) {
				log.Fatalf("lost key %d", k)
			}
		}
	}

	snap := d.Telemetry().Snapshot()
	fmt.Printf("queries        %d (hits %d)\n", snap.Queries, snap.Hits)
	fmt.Printf("probes/query   %.3f\n", snap.ProbesPerQuery)
	fmt.Printf("maxΦ̂·n        %.4f  (cell %d; the paper's headline, 1.00 = perfectly spread)\n",
		snap.MaxPhiN, snap.MaxPhiCell)
	fmt.Printf("p99 latency    %d ns\n", snap.Latency.P99)
	fmt.Println("hottest cells:")
	for _, h := range snap.TopCells {
		fmt.Printf("  cell %6d  Φ̂·n = %.4f\n", h.Cell, h.Phi*float64(n))
	}

	// The self-check: diff the live estimate against contention.Exact.
	drift, err := d.TelemetryCompareExact(keys)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nlive vs exact: maxΦ ratio %.4f, probes ratio %.4f, step-mass L∞ %.2g\n",
		drift.MaxPhiRatio, drift.ProbesRatio, drift.StepMassMaxDiff)

	// A few recent probe traces (cell sequences of individual queries).
	traces := d.Telemetry().Traces()
	if len(traces) > 0 {
		tr := traces[0]
		fmt.Printf("\nsample trace: key %x, %d steps, cells %v\n", tr.KeyHash, tr.Steps, tr.Cells)
	}
}
