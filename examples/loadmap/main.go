// Loadmap: visualize where query probe mass lands. Prints an ASCII heat
// strip of per-cell contention for the low-contention dictionary next to
// FKS and binary search — the F1 figure as a picture.
//
//	go run ./examples/loadmap
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/contention"
	"repro/internal/dist"
	"repro/internal/experiments"
)

func main() {
	const n = 2048
	const seed = 99
	const buckets = 96 // character columns per strip

	keys := experiments.Keys(n, seed)
	structures, err := experiments.ComparisonSet(keys, seed)
	if err != nil {
		log.Fatal(err)
	}
	q := dist.NewUniformSet(keys, "")

	shades := []rune(" .:-=+*#%@")
	fmt.Printf("per-cell probe mass under uniform positive queries (n = %d)\n", n)
	fmt.Printf("each strip is the whole table, %d cells per character; darker = hotter\n\n", buckets)

	for _, st := range structures {
		prof, err := contention.Profile(st, q.Support())
		if err != nil {
			log.Fatal(err)
		}
		// Bucket the profile into character columns by maximum (hot spots
		// must not be averaged away).
		cols := make([]float64, buckets)
		per := (len(prof) + buckets - 1) / buckets
		maxVal := 0.0
		for i, v := range prof {
			c := i / per
			if v > cols[c] {
				cols[c] = v
			}
			if v > maxVal {
				maxVal = v
			}
		}
		var sb strings.Builder
		for _, v := range cols {
			idx := 0
			if maxVal > 0 {
				idx = int(v / maxVal * float64(len(shades)-1))
			}
			sb.WriteRune(shades[idx])
		}
		ratio := maxVal * float64(len(prof))
		fmt.Printf("%-11s |%s| hottest cell %.0f× optimal\n", st.Name(), sb.String(), ratio)
	}

	fmt.Println("\nbinary search is black at the root; fks/cuckoo/dm show hot header")
	fmt.Println("columns; the low-contention dictionary is a uniform light strip.")
}
