// Adversarial: what happens outside Theorem 3's uniform-query assumption,
// and what §3 says about it.
//
// A skewed (Zipf) or adversarial (point-mass) query distribution
// concentrates probe mass on the deterministic final probes of every
// structure — including the low-contention dictionary. The paper's lower
// bound (Theorem 13) shows this is fundamental: a query algorithm that does
// not know the distribution cannot keep contention within polylog of optimal
// without Ω(log log n) probes.
//
//	go run ./examples/adversarial
package main

import (
	"fmt"
	"log"
	"math"
	"os"
	"text/tabwriter"

	"repro/internal/contention"
	"repro/internal/dist"
	"repro/internal/experiments"
	"repro/internal/lowerbound"
)

func main() {
	const n = 4096
	const seed = 13

	keys := experiments.Keys(n, seed)
	structures, err := experiments.ComparisonSet(keys, seed)
	if err != nil {
		log.Fatal(err)
	}

	distributions := []dist.Supporter{
		dist.NewUniformSet(keys, "uniform"),
		dist.NewZipf(keys, 0.8),
		dist.NewZipf(keys, 1.2),
		dist.PointMass{Key: keys[0]},
	}

	fmt.Printf("contention ratio to optimal (n = %d): skew breaks every structure\n\n", n)
	tw := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "structure\tuniform\tzipf(0.8)\tzipf(1.2)\tpoint-mass")
	for _, st := range structures {
		row := st.Name()
		for _, q := range distributions {
			res, err := contention.Exact(st, q.Support())
			if err != nil {
				log.Fatal(err)
			}
			row += fmt.Sprintf("\t%.0f", res.RatioStep())
		}
		fmt.Fprintln(tw, row)
	}
	tw.Flush()

	fmt.Println("\nTheorem 13: to get contention within polylog(n) of optimal for EVERY")
	fmt.Println("distribution, a balanced scheme needs at least this many probes:")
	fmt.Println()
	tw = tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(tw, "n\tlg lg n\tminimal t*")
	for _, e := range []int{16, 32, 64, 128, 256} {
		nf := math.Pow(2, float64(e))
		lg := float64(e)
		fmt.Fprintf(tw, "2^%d\t%.1f\t%d\n", e, math.Log2(lg), lowerbound.MinTStar(nf, lg*lg, lg*lg))
	}
	tw.Flush()
	fmt.Println("\nthe Ω(log log n) growth is the paper's time-contention trade-off.")
}
