package lcds

import (
	"fmt"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/shard"
	"repro/internal/telemetry"
)

// TelemetryConfig configures the live observability layer (WithTelemetry):
// probe sampling, query tracing, and snapshot shape. The zero value counts
// every probe and traces nothing. See internal/telemetry for field docs.
type TelemetryConfig = telemetry.Config

// Telemetry is the live telemetry handle of a dictionary built with
// WithTelemetry: Snapshot() for the runtime Φ̂ estimate, per-step probe
// masses, latency histograms and per-shard rebuild metrics; Traces() for
// the recent-query ring.
type Telemetry = telemetry.Telemetry

// TelemetrySnapshot is a point-in-time summary of the live telemetry.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHistogram is a log₂-bucket histogram snapshot (latency,
// rebuild durations, writer pauses).
type TelemetryHistogram = telemetry.HistogramSnapshot

// QueryTrace is one sampled query in the trace ring.
type QueryTrace = telemetry.QueryTrace

// Tracer receives sampled query traces in place of the internal ring.
type Tracer = telemetry.Tracer

// TelemetryDrift is the live-vs-exact contention comparison
// (TelemetryCompareExact): ratios of measured Φ̂ to the analytic Φ.
type TelemetryDrift = telemetry.Drift

// WithTelemetry enables the live observability layer on New, Read and
// NewDynamic: runtime Φ̂ estimation on striped per-cell/per-step counters,
// optional 1-in-k probe sampling, log₂ latency histograms, a trace ring of
// recent queries, and (dynamic dictionaries) per-shard rebuild metrics.
// Without this option no sink is installed and the query path performs zero
// additional atomic writes and zero additional allocations.
func WithTelemetry(cfg TelemetryConfig) Option {
	return func(c *opterr) {
		if cfg.Sample < 0 {
			c.err = fmt.Errorf("lcds: telemetry sample %d must be ≥ 0", cfg.Sample)
			return
		}
		cc := cfg
		c.o.telem = &cc
	}
}

// Telemetry returns the dictionary's live telemetry handle, or nil when it
// was built without WithTelemetry.
func (d *Dict) Telemetry() *Telemetry { return d.tel }

// Telemetry returns the dictionary's live telemetry handle, or nil when it
// was built without WithTelemetry.
func (d *DynamicDict) Telemetry() *Telemetry { return d.tel }

// TelemetryCompareExact diffs the live telemetry snapshot against the exact
// offline contention analysis under uniform queries over keys (pass the
// stored key set for the paper's uniform-positive distribution) — the
// theory-vs-runtime self-check. It errors when the dictionary was built
// without WithTelemetry or keys is empty.
func (d *Dict) TelemetryCompareExact(keys []uint64) (TelemetryDrift, error) {
	if d.tel == nil {
		return TelemetryDrift{}, fmt.Errorf("lcds: telemetry is not enabled (use WithTelemetry)")
	}
	if len(keys) == 0 {
		return TelemetryDrift{}, fmt.Errorf("lcds: telemetry comparison needs a non-empty key set")
	}
	q := dist.NewUniformSet(keys, "")
	res, err := contention.Exact(d.structure(), q.Support())
	if err != nil {
		return TelemetryDrift{}, err
	}
	if d.sharded != nil {
		res.StepMass = foldShardSteps(d.sharded, res.StepMass)
	}
	return d.tel.Snapshot().CompareExact(res), nil
}

// foldShardSteps converts an exact step-mass vector from the composite
// ProbeSpec layout (disjoint step range per shard) to the time-aligned
// layout the live counters use (all shards forward to step 1 + t, since
// only one shard executes per query). Per-cell masses are unaffected by
// the relabeling — shard cells only ever receive their own shard's steps —
// so only the step-mass comparison needs this.
func foldShardSteps(sd *shard.Dict, mass []float64) []float64 {
	maxP := 0
	for i := 0; i < sd.Shards(); i++ {
		if mp := sd.Shard(i).MaxProbes(); mp > maxP {
			maxP = mp
		}
	}
	folded := make([]float64, 1+maxP)
	if len(mass) > 0 {
		folded[0] = mass[0] // routing step
	}
	for i := 0; i < sd.Shards(); i++ {
		off := sd.StepOffset(i)
		for t := 0; t < sd.Shard(i).MaxProbes() && off+t < len(mass); t++ {
			folded[1+t] += mass[off+t]
		}
	}
	return folded
}

// installTelemetry builds the telemetry instance for a freshly constructed
// static dictionary and installs it as the table's probe sink (before the
// dictionary is returned to the caller, so installation cannot race a
// query). Sharded composites get per-shard cell ranges — plus the routing
// row — as snapshot views.
func (d *Dict) installTelemetry(cfg telemetry.Config) {
	tab := d.structure().Table()
	if d.sharded != nil && len(cfg.Ranges) == 0 {
		cfg.Ranges = append(cfg.Ranges, telemetry.Range{Name: "route", Start: 0, Cells: d.sharded.RouteWidth()})
		for i := 0; i < d.sharded.Shards(); i++ {
			cfg.Ranges = append(cfg.Ranges, telemetry.Range{
				Name:  fmt.Sprintf("shard%d", i),
				Start: d.sharded.CellOffset(i),
				Cells: d.sharded.Shard(i).Table().Size(),
			})
		}
	}
	d.tel = telemetry.New(cfg, tab.Size(), d.structure().N())
	tab.SetSink(d.tel)
}

// keyHash obscures a queried key in traces (splitmix64 finalizer): traces
// may be exposed on debug endpoints and must not leak the keyset.
func keyHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lookupTelemetry is Lookup's instrumented twin: latency timing, outcome
// counting, and — for the 1-in-TraceEvery sampled queries — per-step probe
// capture into the trace ring. Probe counting itself happens in the table
// sink, not here.
func (d *Dict) lookupTelemetry(x uint64) (bool, error) {
	start := time.Now()
	traced := d.tel.ShouldTrace()
	var (
		ok    bool
		err   error
		shard int
		cells []int32
	)
	switch {
	case traced:
		sc := d.scratch.Get().(*core.QueryScratch)
		sc.StartCapture()
		if d.sharded != nil {
			ok, shard, err = d.sharded.ContainsTraced(x, d.src, sc)
		} else {
			ok, err = d.inner.ContainsScratch(x, d.src, sc)
		}
		log := sc.StopCapture()
		cells = make([]int32, len(log))
		copy(cells, log)
		if d.sharded != nil {
			// Translate shard-local cell indices into the composite table's
			// flat space. (The routing probe itself is not captured.)
			off := int32(d.sharded.CellOffset(shard))
			for i := range cells {
				if cells[i] >= 0 {
					cells[i] += off
				}
			}
		}
		d.scratch.Put(sc)
	case d.sharded != nil:
		ok, err = d.sharded.Contains(x, d.src)
	default:
		sc := d.scratch.Get().(*core.QueryScratch)
		ok, err = d.inner.ContainsScratch(x, d.src, sc)
		d.scratch.Put(sc)
	}
	lat := time.Since(start).Nanoseconds()
	d.tel.ObserveQuery(ok, err != nil, lat)
	if traced {
		d.tel.Emit(telemetry.QueryTrace{
			KeyHash: keyHash(x), Shard: shard, Steps: len(cells), Cells: cells,
			Found: ok, Err: err != nil, LatencyNs: lat, UnixNano: time.Now().UnixNano(),
		})
	}
	return ok, err
}

// containsTelemetry is the DynamicDict analogue of lookupTelemetry. Dynamic
// telemetry is cell-agnostic (tables are replaced every epoch), so traces
// carry the static snapshot's local cell indices for context, not stable
// composite addresses.
func (d *DynamicDict) containsTelemetry(x uint64) (bool, error) {
	start := time.Now()
	traced := d.tel.ShouldTrace()
	var (
		ok    bool
		err   error
		shard int
		cells []int32
	)
	if traced {
		sc := d.scratch.Get().(*core.QueryScratch)
		sc.StartCapture()
		if d.sharded != nil {
			ok, shard, err = d.sharded.ContainsTraced(x, d.src, sc)
		} else {
			ok, err = d.inner.ContainsScratch(x, d.src, sc)
		}
		log := sc.StopCapture()
		cells = make([]int32, len(log))
		copy(cells, log)
		d.scratch.Put(sc)
	} else if d.sharded != nil {
		ok, err = d.sharded.Contains(x, d.src)
	} else {
		ok, err = d.inner.Contains(x, d.src)
	}
	lat := time.Since(start).Nanoseconds()
	d.tel.ObserveQuery(ok, err != nil, lat)
	if traced {
		d.tel.Emit(telemetry.QueryTrace{
			KeyHash: keyHash(x), Shard: shard, Steps: len(cells), Cells: cells,
			Found: ok, Err: err != nil, LatencyNs: lat, UnixNano: time.Now().UnixNano(),
		})
	}
	return ok, err
}

// observeBatch records one batch completion on the telemetry layer, counting
// hits from the answered prefix.
func observeBatch(tel *telemetry.Telemetry, out []bool, n int, err error, start time.Time) {
	hits := 0
	if err == nil {
		for _, ok := range out[:n] {
			if ok {
				hits++
			}
		}
	}
	tel.ObserveBatch(n, hits, err != nil, time.Since(start).Nanoseconds())
}
