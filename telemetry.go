package lcds

import (
	"fmt"
	"time"

	"repro/internal/contention"
	"repro/internal/core"
	"repro/internal/dist"
	"repro/internal/scheme"
	"repro/internal/telemetry"
	"repro/internal/telemetry/events"
)

// TelemetryConfig configures the live observability layer (WithTelemetry):
// probe sampling, query tracing, and snapshot shape. The zero value counts
// every probe and traces nothing. See internal/telemetry for field docs.
type TelemetryConfig = telemetry.Config

// TelemetryAdaptiveConfig makes the probe-sampling factor self-tuning
// (TelemetryConfig.Adaptive): a feedback controller steers the recorded
// probe rate toward a budget, doubling the factor when the workload runs hot
// and halving it when traffic is light. Drive it with Telemetry.AdaptTick
// from a ticker goroutine, as cmd/lcds-monitor -adaptive does.
type TelemetryAdaptiveConfig = telemetry.AdaptiveConfig

// Telemetry is the live telemetry handle of a dictionary built with
// WithTelemetry: Snapshot() for the runtime Φ̂ estimate, per-step probe
// masses, latency histograms and per-shard rebuild metrics; Traces() for
// the recent-query ring.
type Telemetry = telemetry.Telemetry

// TelemetrySnapshot is a point-in-time summary of the live telemetry.
type TelemetrySnapshot = telemetry.Snapshot

// TelemetryHistogram is a log₂-bucket histogram snapshot (latency,
// rebuild durations, writer pauses).
type TelemetryHistogram = telemetry.HistogramSnapshot

// QueryTrace is one sampled query in the trace ring.
type QueryTrace = telemetry.QueryTrace

// Tracer receives sampled query traces in place of the internal ring.
type Tracer = telemetry.Tracer

// TelemetryDrift is the live-vs-exact contention comparison
// (TelemetryCompareExact): ratios of measured Φ̂ to the analytic Φ.
type TelemetryDrift = telemetry.Drift

// WithTelemetry enables the live observability layer on New, Read and
// NewDynamic: runtime Φ̂ estimation on striped per-cell/per-step counters,
// optional 1-in-k probe sampling, log₂ latency histograms, a trace ring of
// recent queries, and (dynamic dictionaries) per-shard rebuild metrics.
// Without this option no sink is installed and the query path performs zero
// additional atomic writes and zero additional allocations.
func WithTelemetry(cfg TelemetryConfig) Option {
	return func(c *opterr) {
		if cfg.Sample < 0 {
			c.err = fmt.Errorf("lcds: telemetry sample %d must be ≥ 0", cfg.Sample)
			return
		}
		if cfg.Adaptive != nil && !(cfg.Adaptive.TargetProbesPerSec > 0) {
			c.err = fmt.Errorf("lcds: adaptive telemetry needs TargetProbesPerSec > 0 (got %v)", cfg.Adaptive.TargetProbesPerSec)
			return
		}
		cc := cfg
		c.o.telem = &cc
	}
}

// Event is one entry of the flight-recorder timeline: a typed, timestamped
// record of a structural transition (epoch seal, rebuild, phase split/join,
// hot-key promotion, sampling retune, overflow). Payload words A/B/C are
// decoded per type by its JSON encoding; key-carrying events store hashed
// keys only.
type Event = events.Event

// EventType discriminates flight-recorder events.
type EventType = events.Type

// EventLog is the flight recorder itself: a lock-free multi-producer ring
// drained into a bounded timeline. Obtain a dictionary's log with EventLog()
// or share one across dictionaries via WithEventLog.
type EventLog = events.Log

// EventLogStats summarizes a flight recorder: events recorded and dropped,
// per-type counts, and the next timeline cursor.
type EventLogStats = events.Stats

// Flight-recorder event types. See internal/telemetry/events for the payload
// carried by each.
const (
	EventEpochSealed     = events.EpochSealed
	EventRebuildStart    = events.RebuildStart
	EventRebuildEnd      = events.RebuildEnd
	EventPhaseSplit      = events.PhaseSplit
	EventPhaseJoined     = events.PhaseJoined
	EventHotKeyPromoted  = events.HotKeyPromoted
	EventHotKeyDemoted   = events.HotKeyDemoted
	EventSamplingRetuned = events.SamplingRetuned
	EventShardRebuild    = events.ShardRebuild
	EventOverflowDropped = events.OverflowDropped
)

// EventFailedRebuild decodes a RebuildEnd event's A word into the epoch and
// whether the rebuild failed (construction error; the old epoch stayed).
func EventFailedRebuild(a uint64) (epoch uint64, failed bool) {
	return events.FailedRebuild(a)
}

// EventLogConfig sizes the flight recorder enabled by WithEventLog. Zero
// values select the defaults (1024-slot ring, 4096-event timeline);
// capacities round up to powers of two.
type EventLogConfig struct {
	// RingCapacity bounds the lock-free staging ring event emitters write
	// into. Emission never blocks: when drains fall behind and the ring
	// fills, events are dropped and counted exactly (an OverflowDropped
	// event records each gap in the timeline).
	RingCapacity int
	// TimelineCapacity bounds the drained timeline Timeline() pages through;
	// older events fall off. Reads (Timeline, Stats, the monitor's
	// /debug/timeline) drain the ring, so only the window between reads
	// needs to fit in RingCapacity.
	TimelineCapacity int
}

// WithEventLog enables the flight recorder on New, Read and NewDynamic: an
// always-on, lock-free timeline of structural events — epoch seals, rebuild
// start/end with durations, split-phase transitions, hot-key promotions and
// demotions (hashed keys), sampling retunes — queryable with Timeline and
// served by cmd/lcds-monitor at /debug/timeline. Emission is a single CAS
// plus plain stores on the writer's claimed slot, off the query path
// entirely; a dictionary with only an event log queries at the same speed as
// a bare one. WithTelemetry implies an event log (the telemetry layer emits
// sampling retunes into it); use WithEventLog alongside it to size the log
// explicitly or without it for events with zero query-path instrumentation.
func WithEventLog(cfg EventLogConfig) Option {
	return func(c *opterr) {
		if cfg.RingCapacity < 0 || cfg.TimelineCapacity < 0 {
			c.err = fmt.Errorf("lcds: negative event log capacity (%d, %d)", cfg.RingCapacity, cfg.TimelineCapacity)
			return
		}
		cc := cfg
		c.o.eventlog = &cc
	}
}

// EventLog returns the dictionary's flight recorder, or nil when it was
// built without WithEventLog and without WithTelemetry.
func (d *Dict) EventLog() *EventLog { return d.events }

// EventLog returns the dictionary's flight recorder, or nil when it was
// built without WithEventLog and without WithTelemetry.
func (d *DynamicDict) EventLog() *EventLog { return d.events }

// Timeline returns up to max flight-recorder events with sequence numbers
// > since, oldest first, plus the cursor to pass as the next since. Events
// that aged out of the timeline window are skipped (the cursor never
// sticks). A dictionary without an event log returns (nil, since).
func (d *Dict) Timeline(since uint64, max int) ([]Event, uint64) {
	if d.events == nil {
		return nil, since
	}
	return d.events.Timeline(since, max)
}

// Timeline returns up to max flight-recorder events with sequence numbers
// > since, oldest first, plus the next cursor. See Dict.Timeline.
func (d *DynamicDict) Timeline(since uint64, max int) ([]Event, uint64) {
	if d.events == nil {
		return nil, since
	}
	return d.events.Timeline(since, max)
}

// Telemetry returns the dictionary's live telemetry handle, or nil when it
// was built without WithTelemetry.
func (d *Dict) Telemetry() *Telemetry { return d.tel }

// Telemetry returns the dictionary's live telemetry handle, or nil when it
// was built without WithTelemetry.
func (d *DynamicDict) Telemetry() *Telemetry { return d.tel }

// TelemetryCompareExact diffs the live telemetry snapshot against the exact
// offline contention analysis under uniform queries over keys (pass the
// stored key set for the paper's uniform-positive distribution) — the
// theory-vs-runtime self-check. It errors when the dictionary was built
// without WithTelemetry or keys is empty.
func (d *Dict) TelemetryCompareExact(keys []uint64) (TelemetryDrift, error) {
	if len(keys) == 0 {
		return TelemetryDrift{}, fmt.Errorf("lcds: telemetry comparison needs a non-empty key set")
	}
	return d.TelemetryCompareExactWeighted(uniformWeights(keys))
}

// TelemetryCompareExactWeighted is TelemetryCompareExact under an arbitrary
// query distribution: the exact analysis is computed under the given
// weighted support — pass the same weights the live workload draws from
// (e.g. WeightedDrive.Realized of internal/workload, or any Supporter's
// Support) and the drift ratios read 1.0 exactly when the running system
// matches Definition 1 under that skew. Weights are normalized; duplicate
// keys merge.
func (d *Dict) TelemetryCompareExactWeighted(support []WeightedKey) (TelemetryDrift, error) {
	if d.tel == nil {
		return TelemetryDrift{}, fmt.Errorf("lcds: telemetry is not enabled (use WithTelemetry)")
	}
	res, err := exactWeighted(d.structure(), support)
	if err != nil {
		return TelemetryDrift{}, err
	}
	if d.sharded != nil {
		res.StepMass = d.sharded.FoldStepMass(res.StepMass)
	}
	return d.tel.Snapshot().CompareExact(res), nil
}

// TelemetryCompareExact diffs the dynamic dictionary's live telemetry
// against the exact analysis of the current epoch's static snapshot under
// uniform queries over keys. The comparison is confined to the static step
// range (Snapshot.CompareExactSteps): the live counters also carry the
// update buffer's probes at offset steps, which the static analysis never
// models. Dynamic telemetry is cell-agnostic, so MaxPhiLive/MaxPhiRatio are
// zero; the meaningful signals are the probes ratio and the step-mass gap.
// Sharded dynamic dictionaries do not support the comparison (each shard
// rebuilds on its own schedule, so there is no single static structure to
// analyze); quiesce before comparing so no rebuild swaps the snapshot.
func (d *DynamicDict) TelemetryCompareExact(keys []uint64) (TelemetryDrift, error) {
	if len(keys) == 0 {
		return TelemetryDrift{}, fmt.Errorf("lcds: telemetry comparison needs a non-empty key set")
	}
	return d.TelemetryCompareExactWeighted(uniformWeights(keys))
}

// TelemetryCompareExactWeighted is the dynamic TelemetryCompareExact under
// an arbitrary weighted support. See the uniform variant for the dynamic
// caveats (static-range comparison, cell-agnostic live side).
func (d *DynamicDict) TelemetryCompareExactWeighted(support []WeightedKey) (TelemetryDrift, error) {
	if d.tel == nil {
		return TelemetryDrift{}, fmt.Errorf("lcds: telemetry is not enabled (use WithTelemetry)")
	}
	if d.sharded != nil {
		return TelemetryDrift{}, fmt.Errorf("lcds: sharded dynamic dictionaries do not support the exact comparison")
	}
	base := d.inner.Base()
	res, err := exactWeighted(base, support)
	if err != nil {
		return TelemetryDrift{}, err
	}
	return d.tel.Snapshot().CompareExactSteps(res, base.MaxProbes()), nil
}

// exactWeighted runs the exact contention analysis under a caller-supplied
// weighted support, normalized first.
func exactWeighted(s scheme.Scheme, support []WeightedKey) (contention.ExactResult, error) {
	w := make([]dist.Weighted, len(support))
	for i, p := range support {
		w[i] = dist.Weighted{Key: p.Key, P: p.P}
	}
	norm, err := contention.NormalizeSupport(w)
	if err != nil {
		return contention.ExactResult{}, fmt.Errorf("lcds: %w", err)
	}
	return contention.Exact(s, norm)
}

// uniformWeights lifts a key set to the uniform weighted support over it.
func uniformWeights(keys []uint64) []WeightedKey {
	w := 1.0 / float64(len(keys))
	out := make([]WeightedKey, len(keys))
	for i, k := range keys {
		out[i] = WeightedKey{Key: k, P: w}
	}
	return out
}

// installTelemetry builds the telemetry instance for a freshly constructed
// static dictionary and installs it as the table's probe sink (before the
// dictionary is returned to the caller, so installation cannot race a
// query). Sharded composites get per-shard cell ranges — plus the routing
// row — as snapshot views.
func (d *Dict) installTelemetry(cfg telemetry.Config) {
	tab := d.structure().Table()
	if d.sharded != nil && len(cfg.Ranges) == 0 {
		cfg.Ranges = append(cfg.Ranges, telemetry.Range{Name: "route", Start: 0, Cells: d.sharded.RouteWidth()})
		for i := 0; i < d.sharded.Shards(); i++ {
			cfg.Ranges = append(cfg.Ranges, telemetry.Range{
				Name:  fmt.Sprintf("shard%d", i),
				Start: d.sharded.CellOffset(i),
				Cells: d.sharded.Shard(i).Table().Size(),
			})
		}
	}
	d.tel = telemetry.New(cfg, tab.Size(), d.structure().N())
	tab.SetSink(d.tel)
}

// keyHash obscures a queried key in traces (splitmix64 finalizer): traces
// may be exposed on debug endpoints and must not leak the keyset.
func keyHash(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// lookupTelemetry is Lookup's instrumented twin: latency timing, outcome
// counting, and — for the 1-in-TraceEvery sampled queries — per-step probe
// capture into the trace ring. Probe counting itself happens in the table
// sink, not here.
func (d *Dict) lookupTelemetry(x uint64) (bool, error) {
	start := time.Now()
	traced := d.tel.ShouldTrace()
	var (
		ok    bool
		err   error
		shard int
		cells []int32
	)
	switch {
	case traced:
		sc := d.scratch.Get().(*core.QueryScratch)
		sc.StartCapture()
		if d.sharded != nil {
			ok, shard, err = d.sharded.ContainsTraced(x, d.src, sc)
		} else {
			ok, err = d.inner.ContainsScratch(x, d.src, sc)
		}
		log := sc.StopCapture()
		cells = make([]int32, len(log))
		copy(cells, log)
		if d.sharded != nil {
			// Translate shard-local cell indices into the composite table's
			// flat space. (The routing probe itself is not captured.)
			off := int32(d.sharded.CellOffset(shard))
			for i := range cells {
				if cells[i] >= 0 {
					cells[i] += off
				}
			}
		}
		d.scratch.Put(sc)
	case d.sharded != nil:
		ok, err = d.sharded.Contains(x, d.src)
	default:
		sc := d.scratch.Get().(*core.QueryScratch)
		ok, err = d.inner.ContainsScratch(x, d.src, sc)
		d.scratch.Put(sc)
	}
	lat := time.Since(start).Nanoseconds()
	d.tel.ObserveQuery(ok, err != nil, lat)
	if traced {
		d.tel.Emit(telemetry.QueryTrace{
			KeyHash: keyHash(x), Shard: shard, Steps: len(cells), Cells: cells,
			Found: ok, Err: err != nil, LatencyNs: lat, UnixNano: time.Now().UnixNano(),
		})
	}
	return ok, err
}

// containsTelemetry is the DynamicDict analogue of lookupTelemetry. Dynamic
// telemetry is cell-agnostic (tables are replaced every epoch), so traces
// carry the static snapshot's local cell indices for context, not stable
// composite addresses.
func (d *DynamicDict) containsTelemetry(x uint64) (bool, error) {
	start := time.Now()
	traced := d.tel.ShouldTrace()
	var (
		ok    bool
		err   error
		shard int
		cells []int32
	)
	if traced {
		sc := d.scratch.Get().(*core.QueryScratch)
		sc.StartCapture()
		if d.sharded != nil {
			ok, shard, err = d.sharded.ContainsTraced(x, d.src, sc)
		} else {
			ok, err = d.inner.ContainsScratch(x, d.src, sc)
		}
		log := sc.StopCapture()
		cells = make([]int32, len(log))
		copy(cells, log)
		d.scratch.Put(sc)
	} else if d.sharded != nil {
		ok, err = d.sharded.Contains(x, d.src)
	} else {
		ok, err = d.inner.Contains(x, d.src)
	}
	lat := time.Since(start).Nanoseconds()
	d.tel.ObserveQuery(ok, err != nil, lat)
	if traced {
		d.tel.Emit(telemetry.QueryTrace{
			KeyHash: keyHash(x), Shard: shard, Steps: len(cells), Cells: cells,
			Found: ok, Err: err != nil, LatencyNs: lat, UnixNano: time.Now().UnixNano(),
		})
	}
	return ok, err
}

// observeBatch records one batch completion on the telemetry layer, counting
// hits from the answered prefix.
func observeBatch(tel *telemetry.Telemetry, out []bool, n int, err error, start time.Time) {
	hits := 0
	if err == nil {
		for _, ok := range out[:n] {
			if ok {
				hits++
			}
		}
	}
	tel.ObserveBatch(n, hits, err != nil, time.Since(start).Nanoseconds())
}
